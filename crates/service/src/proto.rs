//! The versioned, length-prefixed binary wire protocol of the planning
//! service.
//!
//! Every message travels as one *frame*: a little-endian `u32` payload length
//! followed by the payload, whose first byte is the message tag. The format is
//! hand-rolled (the workspace takes no serialization dependency) and strictly
//! deterministic: encoding the same value twice yields identical bytes, which
//! is what lets the load generator prove the TCP and in-process transports
//! behaviorally identical by comparing [`ReplanSummary::plan_fingerprint`]s.
//!
//! ```text
//! frame    := [len: u32 LE] [payload: len bytes]
//! payload  := [tag: u8] [body]
//! ```
//!
//! Decoding is strict: unknown tags, truncated bodies, trailing bytes,
//! out-of-range enum values, invalid UTF-8 and frames above
//! [`MAX_FRAME_LEN`] are all [`WireError`]s — a malformed frame never reaches
//! the worker shards (the listener answers [`Response::Error`] and closes the
//! offending connection).
//!
//! Version negotiation: a client's first message must be
//! [`Request::Hello`] carrying [`PROTO_VERSION`]; the server answers
//! [`Response::HelloAck`] or rejects the connection with
//! [`ErrorCode::UnsupportedVersion`].

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use spindle_cluster::DeviceId;
use spindle_core::{CacheTelemetry, ReplanOutcome};
use spindle_graph::{
    ComputationGraph, Modality, OpId, OpKind, Operator, ParamId, TaskId, TaskSpec, TensorShape,
};

use crate::ServiceStats;

/// The wire-protocol version this build speaks.
///
/// v2 extended [`ReplanSummary`] and the stats frame with recovery
/// accounting (re-materialised MetaOps, restore bytes); the layout change is
/// not decodable by v1 peers, so the version was bumped.
pub const PROTO_VERSION: u16 = 2;

/// Upper bound on a frame's payload length. Anything larger is rejected
/// before buffering — a single malformed length prefix must not make the
/// listener allocate gigabytes.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Bytes of the frame length prefix.
pub const FRAME_HEADER_LEN: usize = 4;

// Request payload tags.
const TAG_HELLO: u8 = 0x01;
const TAG_SUBMIT_GRAPH: u8 = 0x02;
const TAG_TOPOLOGY: u8 = 0x03;
const TAG_STATS: u8 = 0x04;
const TAG_SHUTDOWN: u8 = 0x05;

// Response payload tags.
const TAG_HELLO_ACK: u8 = 0x81;
const TAG_ACCEPTED: u8 = 0x82;
const TAG_PLAN_READY: u8 = 0x83;
const TAG_REJECTED: u8 = 0x84;
const TAG_STATS_REPLY: u8 = 0x85;
const TAG_TOPOLOGY_ACK: u8 = 0x86;
const TAG_ERROR: u8 = 0x87;

/// Why a frame could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The body ended before the value being read was complete.
    Truncated,
    /// A frame announced a payload above [`MAX_FRAME_LEN`].
    Oversized {
        /// The announced payload length.
        len: usize,
    },
    /// Bytes remained after the message was fully decoded.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// The payload's first byte is not a known message tag.
    UnknownTag(u8),
    /// An enum field carried an out-of-range value.
    BadEnum {
        /// Which enum was being decoded.
        what: &'static str,
        /// The offending wire value.
        value: u32,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A length field exceeded the remaining body.
    BadLength,
    /// The decoded graph failed [`ComputationGraph::new`] validation.
    InvalidGraph(String),
    /// A `Hello` carried a protocol version this build does not speak.
    UnsupportedVersion(u16),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "frame body truncated"),
            Self::Oversized { len } => {
                write!(f, "frame payload of {len} bytes exceeds {MAX_FRAME_LEN}")
            }
            Self::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete message")
            }
            Self::UnknownTag(tag) => write!(f, "unknown message tag {tag:#04x}"),
            Self::BadEnum { what, value } => write!(f, "bad {what} value {value}"),
            Self::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            Self::BadLength => write!(f, "length field exceeds the frame body"),
            Self::InvalidGraph(e) => write!(f, "decoded graph is invalid: {e}"),
            Self::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build: {PROTO_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Stable numeric error codes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The frame could not be decoded (any [`WireError`] except version
    /// mismatch). The connection is closed after this error.
    Malformed = 1,
    /// The `Hello` version is not supported. The connection is closed.
    UnsupportedVersion = 2,
    /// A request arrived before the connection's `Hello`. Closed.
    HelloRequired = 3,
    /// The submitted graph failed validation.
    InvalidGraph = 4,
    /// The service rejected the request (worker gone / shutting down).
    Unavailable = 5,
    /// An unexpected server-side failure.
    Internal = 6,
}

impl ErrorCode {
    fn from_u16(value: u16) -> Result<Self, WireError> {
        Ok(match value {
            1 => Self::Malformed,
            2 => Self::UnsupportedVersion,
            3 => Self::HelloRequired,
            4 => Self::InvalidGraph,
            5 => Self::Unavailable,
            6 => Self::Internal,
            other => {
                return Err(WireError::BadEnum {
                    what: "error code",
                    value: u32::from(other),
                })
            }
        })
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version negotiation; must be the first message of every connection.
    Hello {
        /// The protocol version the client speaks.
        proto_version: u16,
    },
    /// A churn event: `tenant`'s task mix became `graph`.
    SubmitGraph {
        /// The tenant whose task mix changed.
        tenant: u64,
        /// The tenant's new computation graph.
        graph: Arc<ComputationGraph>,
    },
    /// A cluster topology change, broadcast to every worker.
    Topology {
        /// Devices that left the pool.
        removed: Vec<DeviceId>,
        /// Devices that rejoined the pool.
        restored: Vec<DeviceId>,
    },
    /// Request a [`Response::Stats`] snapshot.
    Stats,
    /// Drain and stop the service; the server answers with any remaining
    /// [`Response::PlanReady`] frames followed by a final [`Response::Stats`].
    Shutdown,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `Hello` accepted; the server speaks `proto_version`.
    HelloAck {
        /// The version the server will use on this connection.
        proto_version: u16,
    },
    /// A `SubmitGraph` was accepted onto its tenant's worker queue. The
    /// re-plan itself arrives later as [`Response::PlanReady`].
    Accepted {
        /// The tenant whose submission was accepted.
        tenant: u64,
    },
    /// One finished re-plan (the wire form of a
    /// [`Completion`](crate::Completion)).
    PlanReady {
        /// The tenant that was re-planned.
        tenant: u64,
        /// Summary of the produced plan; empty/default fields with
        /// `error != None` mean the re-plan failed.
        outcome: ReplanSummary,
        /// Planning error message, if the re-plan failed.
        error: Option<String>,
        /// `true` when triggered by a topology change.
        topology_change: bool,
        /// Churn events folded into this re-plan.
        coalesced: u32,
        /// Queue wait of the oldest folded event, nanoseconds.
        queue_wait_ns: u64,
        /// Planning time, nanoseconds.
        plan_time_ns: u64,
    },
    /// A `SubmitGraph` was rejected by backpressure or a tenant quota.
    Rejected {
        /// The tenant whose submission was rejected.
        tenant: u64,
        /// Suggested backoff before retrying, nanoseconds.
        retry_hint_ns: u64,
        /// `true` when a per-tenant fairness quota (not queue depth)
        /// rejected the submission.
        throttled: bool,
    },
    /// Service-wide counter snapshot.
    Stats(WireStats),
    /// A `Topology` change was broadcast to `workers` workers.
    TopologyAck {
        /// Workers notified of the change.
        workers: u32,
    },
    /// A request failed; for [`ErrorCode::Malformed`],
    /// [`ErrorCode::UnsupportedVersion`] and [`ErrorCode::HelloRequired`] the
    /// server closes the connection after sending this.
    Error {
        /// Stable numeric code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// The wire form of [`ServiceStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Submissions accepted onto a worker queue.
    pub submitted: u64,
    /// Submissions rejected by backpressure.
    pub rejected: u64,
    /// Submissions rejected by per-tenant fairness quotas.
    pub throttled: u64,
    /// Coalesced re-plans executed.
    pub replans: u64,
    /// Topology-change re-plans executed.
    pub topology_replans: u64,
    /// Failed re-plans plus worker panics.
    pub errors: u64,
    /// Total planning time, nanoseconds.
    pub plan_nanos: u64,
    /// MetaOps re-materialised from checkpoints across all re-plans.
    pub rematerialized_metaops: u64,
    /// State bytes read back from the checkpoint tier across all re-plans.
    pub restore_bytes: u64,
}

impl From<ServiceStats> for WireStats {
    fn from(s: ServiceStats) -> Self {
        Self {
            submitted: s.submitted,
            rejected: s.rejected,
            throttled: s.throttled,
            replans: s.replans,
            topology_replans: s.topology_replans,
            errors: s.errors,
            plan_nanos: s.plan_nanos,
            rematerialized_metaops: s.rematerialized_metaops,
            restore_bytes: s.restore_bytes,
        }
    }
}

impl From<WireStats> for ServiceStats {
    fn from(s: WireStats) -> Self {
        Self {
            submitted: s.submitted,
            rejected: s.rejected,
            throttled: s.throttled,
            replans: s.replans,
            topology_replans: s.topology_replans,
            errors: s.errors,
            plan_nanos: s.plan_nanos,
            rematerialized_metaops: s.rematerialized_metaops,
            restore_bytes: s.restore_bytes,
        }
    }
}

/// A transport-portable summary of a [`ReplanOutcome`].
///
/// The full outcome owns an [`ExecutionPlan`](spindle_core::ExecutionPlan);
/// shipping every wave over the wire would be wasteful when clients only need
/// the plan's identity and the cache-warmth probe. The summary therefore
/// carries the plan's *fingerprint* — an FNV-1a hash over every wave entry's
/// exact bit pattern — plus the outcome's counters. Two plans have equal
/// fingerprints iff their wave structure, timings and placements are
/// bit-identical, which is the property the transport-equivalence cross-check
/// asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplanSummary {
    /// Bit pattern of the plan's makespan (seconds as `f64::to_bits`).
    pub makespan_bits: u64,
    /// Number of waves in the plan.
    pub num_waves: u32,
    /// FNV-1a fingerprint over every wave's entries (metaop, layers, devices,
    /// per-op time bits, start/duration bits and placement device ids).
    pub plan_fingerprint: u64,
    /// Operator signatures profiled and fitted anew.
    pub new_curve_fits: u32,
    /// Curve-cache hits served while producing the plan.
    pub cache_hits: u32,
    /// `true` if the curve cache was fully warm.
    pub warm: bool,
    /// MetaLevels of the re-planned graph.
    pub levels_total: u32,
    /// Levels spliced from the structural plan cache.
    pub levels_reused: u32,
    /// `true` if the fully placed wave list was served structurally.
    pub placement_reused: bool,
    /// Session cache telemetry after the re-plan.
    pub cache: CacheTelemetry,
    /// Devices lost since the reused placement was made.
    pub devices_lost: u32,
    /// Levels re-placed after a topology change.
    pub levels_replaced: u32,
    /// Parameter bytes that must move to realize the new placement.
    pub migration_bytes: u64,
    /// Bit pattern of the estimated migration time in seconds.
    pub migration_cost_bits: u64,
    /// MetaOps that lost every replica and must restore from checkpoints.
    pub rematerialized_metaops: u32,
    /// State bytes of those MetaOps that must be read back from storage.
    pub restore_bytes: u64,
}

impl ReplanSummary {
    /// Summarises a full [`ReplanOutcome`] for the wire.
    #[must_use]
    pub fn of(outcome: &ReplanOutcome) -> Self {
        let mut fp = Fnv1a::new();
        for wave in outcome.plan.waves() {
            fp.u64(wave.index as u64);
            fp.u64(wave.level as u64);
            fp.u64(wave.start.to_bits());
            fp.u64(wave.duration.to_bits());
            for entry in &wave.entries {
                fp.u64(entry.metaop.index() as u64);
                fp.u64(u64::from(entry.layers));
                fp.u64(u64::from(entry.devices));
                fp.u64(entry.time_per_op.to_bits());
                fp.u64(entry.exec_time.to_bits());
                fp.u64(entry.memory_per_device);
                match &entry.placement {
                    None => fp.u64(u64::MAX),
                    Some(group) => {
                        fp.u64(group.len() as u64);
                        for d in group.iter() {
                            fp.u64(u64::from(d.0));
                        }
                    }
                }
            }
        }
        Self {
            makespan_bits: outcome.plan.makespan().to_bits(),
            num_waves: outcome.plan.num_waves() as u32,
            plan_fingerprint: fp.finish(),
            new_curve_fits: outcome.new_curve_fits as u32,
            cache_hits: outcome.cache_hits as u32,
            warm: outcome.warm,
            levels_total: outcome.levels_total as u32,
            levels_reused: outcome.levels_reused as u32,
            placement_reused: outcome.placement_reused,
            cache: outcome.cache,
            devices_lost: outcome.devices_lost as u32,
            levels_replaced: outcome.levels_replaced as u32,
            migration_bytes: outcome.migration_bytes,
            migration_cost_bits: outcome.migration_cost.to_bits(),
            rematerialized_metaops: outcome.rematerialized_metaops as u32,
            restore_bytes: outcome.restore_bytes,
        }
    }

    /// The plan's makespan in seconds.
    #[must_use]
    pub fn makespan(&self) -> f64 {
        f64::from_bits(self.makespan_bits)
    }
}

/// Incremental FNV-1a over `u64` words.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Primitive writers / readers
// ---------------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}
fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}
fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// A strict reader over one frame payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::BadLength)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::BadEnum {
                what: "bool",
                value: u32::from(other),
            }),
        }
    }

    fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len).map_err(|_| WireError::BadLength)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Asserts the payload was consumed exactly.
    fn finish(&self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::TrailingBytes {
                extra: self.buf.len() - self.pos,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Graph (de)serialization
// ---------------------------------------------------------------------------

fn modality_tag(m: Modality) -> u8 {
    Modality::ALL
        .iter()
        .position(|&x| x == m)
        .expect("Modality::ALL covers every modality") as u8
}

fn modality_from_tag(tag: u8) -> Result<Modality, WireError> {
    Modality::ALL
        .get(tag as usize)
        .copied()
        .ok_or(WireError::BadEnum {
            what: "modality",
            value: u32::from(tag),
        })
}

/// `(tag, modality payload)` of an [`OpKind`]. The enum is `#[non_exhaustive]`
/// upstream; kinds unknown to this protocol version cannot be encoded.
fn kind_tag(kind: OpKind) -> (u8, Option<Modality>) {
    match kind {
        OpKind::Encoder(m) => (0, Some(m)),
        OpKind::Adaptor(m) => (1, Some(m)),
        OpKind::LmEncoder => (2, None),
        OpKind::LmDecoder => (3, None),
        OpKind::LmDecoderOnly => (4, None),
        OpKind::Embedding => (5, None),
        OpKind::Projection => (6, None),
        OpKind::ContrastiveLoss => (7, None),
        OpKind::GenerativeLoss => (8, None),
        // `OpKind` is non-exhaustive upstream; this protocol version covers
        // all nine kinds that exist today.
        _ => unreachable!("unknown OpKind cannot be built by this workspace"),
    }
}

fn kind_from_reader(r: &mut Reader<'_>) -> Result<OpKind, WireError> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => OpKind::Encoder(modality_from_tag(r.u8()?)?),
        1 => OpKind::Adaptor(modality_from_tag(r.u8()?)?),
        2 => OpKind::LmEncoder,
        3 => OpKind::LmDecoder,
        4 => OpKind::LmDecoderOnly,
        5 => OpKind::Embedding,
        6 => OpKind::Projection,
        7 => OpKind::ContrastiveLoss,
        8 => OpKind::GenerativeLoss,
        other => {
            return Err(WireError::BadEnum {
                what: "op kind",
                value: u32::from(other),
            })
        }
    })
}

/// Appends the deterministic wire encoding of `graph` to `out`.
pub fn encode_graph(graph: &ComputationGraph, out: &mut Vec<u8>) {
    put_u32(out, graph.tasks().len() as u32);
    for task in graph.tasks() {
        put_u32(out, task.id().0);
        put_str(out, task.name());
        put_u8(out, task.modalities().len() as u8);
        for &m in task.modalities() {
            put_u8(out, modality_tag(m));
        }
        put_u32(out, task.batch_size());
    }
    put_u32(out, graph.ops().len() as u32);
    for op in graph.ops() {
        put_u32(out, op.id().0);
        let (tag, modality) = kind_tag(op.kind());
        put_u8(out, tag);
        if let Some(m) = modality {
            put_u8(out, modality_tag(m));
        }
        put_u32(out, op.task().0);
        let shape = op.input_shape();
        put_u32(out, shape.batch);
        put_u32(out, shape.seq);
        put_u32(out, shape.hidden);
        put_u64(out, op.flops_forward().to_bits());
        put_u64(out, op.param_bytes());
        put_u64(out, op.output_bytes());
        put_u16(out, op.params().len() as u16);
        for &p in op.params() {
            put_u32(out, p.0);
        }
    }
    put_u32(out, graph.edges().len() as u32);
    for &(src, dst) in graph.edges() {
        put_u32(out, src.0);
        put_u32(out, dst.0);
    }
}

/// Exact length of [`encode_graph`]'s output, without allocating. Used as the
/// byte cost of a submission under per-tenant byte quotas — both transports
/// charge the same figure.
#[must_use]
pub fn graph_wire_len(graph: &ComputationGraph) -> usize {
    let mut len = 4;
    for task in graph.tasks() {
        len += 4 + 4 + task.name().len() + 1 + task.modalities().len() + 4;
    }
    len += 4;
    for op in graph.ops() {
        let (_, modality) = kind_tag(op.kind());
        len += 4 + 1 + usize::from(modality.is_some()) + 4 + 12 + 8 + 8 + 8 + 2;
        len += 4 * op.params().len();
    }
    len + 4 + 8 * graph.edges().len()
}

fn decode_graph(r: &mut Reader<'_>) -> Result<ComputationGraph, WireError> {
    let num_tasks = r.u32()? as usize;
    let mut tasks = Vec::with_capacity(num_tasks.min(1024));
    for _ in 0..num_tasks {
        let id = TaskId(r.u32()?);
        let name = r.str()?;
        let num_modalities = r.u8()? as usize;
        let mut modalities = Vec::with_capacity(num_modalities);
        for _ in 0..num_modalities {
            modalities.push(modality_from_tag(r.u8()?)?);
        }
        let batch = r.u32()?;
        tasks.push(TaskSpec::new(id, name, modalities, batch));
    }
    let num_ops = r.u32()? as usize;
    let mut ops = Vec::with_capacity(num_ops.min(65_536));
    for _ in 0..num_ops {
        let id = OpId(r.u32()?);
        let kind = kind_from_reader(r)?;
        let task = TaskId(r.u32()?);
        let shape = TensorShape::new(r.u32()?, r.u32()?, r.u32()?);
        let flops_forward = f64::from_bits(r.u64()?);
        let param_bytes = r.u64()?;
        let output_bytes = r.u64()?;
        let mut op = Operator::new(id, kind, task, shape).with_costs(
            flops_forward,
            param_bytes,
            output_bytes,
        );
        let num_params = r.u16()? as usize;
        for _ in 0..num_params {
            op = op.with_param(ParamId(r.u32()?));
        }
        ops.push(op);
    }
    let num_edges = r.u32()? as usize;
    let mut edges = Vec::with_capacity(num_edges.min(65_536));
    for _ in 0..num_edges {
        edges.push((OpId(r.u32()?), OpId(r.u32()?)));
    }
    ComputationGraph::new(ops, edges, tasks).map_err(|e| WireError::InvalidGraph(e.to_string()))
}

// ---------------------------------------------------------------------------
// Message (de)serialization
// ---------------------------------------------------------------------------

fn frame(payload: Vec<u8>) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

impl Request {
    /// Encodes the request as one complete frame (length prefix included).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Self::Hello { proto_version } => {
                put_u8(&mut p, TAG_HELLO);
                put_u16(&mut p, *proto_version);
            }
            Self::SubmitGraph { tenant, graph } => {
                put_u8(&mut p, TAG_SUBMIT_GRAPH);
                put_u64(&mut p, *tenant);
                encode_graph(graph, &mut p);
            }
            Self::Topology { removed, restored } => {
                put_u8(&mut p, TAG_TOPOLOGY);
                put_u32(&mut p, removed.len() as u32);
                for d in removed {
                    put_u32(&mut p, d.0);
                }
                put_u32(&mut p, restored.len() as u32);
                for d in restored {
                    put_u32(&mut p, d.0);
                }
            }
            Self::Stats => put_u8(&mut p, TAG_STATS),
            Self::Shutdown => put_u8(&mut p, TAG_SHUTDOWN),
        }
        frame(p)
    }

    /// Decodes a request from one frame payload (no length prefix).
    ///
    /// # Errors
    ///
    /// Any [`WireError`]: strict decoding rejects unknown tags, truncation,
    /// trailing bytes and invalid graphs.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let request = match r.u8()? {
            TAG_HELLO => Self::Hello {
                proto_version: r.u16()?,
            },
            TAG_SUBMIT_GRAPH => {
                let tenant = r.u64()?;
                let graph = Arc::new(decode_graph(&mut r)?);
                Self::SubmitGraph { tenant, graph }
            }
            TAG_TOPOLOGY => {
                let n = r.u32()? as usize;
                let mut removed = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    removed.push(DeviceId(r.u32()?));
                }
                let n = r.u32()? as usize;
                let mut restored = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    restored.push(DeviceId(r.u32()?));
                }
                Self::Topology { removed, restored }
            }
            TAG_STATS => Self::Stats,
            TAG_SHUTDOWN => Self::Shutdown,
            other => return Err(WireError::UnknownTag(other)),
        };
        r.finish()?;
        Ok(request)
    }
}

fn put_summary(out: &mut Vec<u8>, s: &ReplanSummary) {
    put_u64(out, s.makespan_bits);
    put_u32(out, s.num_waves);
    put_u64(out, s.plan_fingerprint);
    put_u32(out, s.new_curve_fits);
    put_u32(out, s.cache_hits);
    put_bool(out, s.warm);
    put_u32(out, s.levels_total);
    put_u32(out, s.levels_reused);
    put_bool(out, s.placement_reused);
    put_u64(out, s.cache.bytes as u64);
    put_u64(out, s.cache.evictions);
    put_u32(out, s.devices_lost);
    put_u32(out, s.levels_replaced);
    put_u64(out, s.migration_bytes);
    put_u64(out, s.migration_cost_bits);
    put_u32(out, s.rematerialized_metaops);
    put_u64(out, s.restore_bytes);
}

fn read_summary(r: &mut Reader<'_>) -> Result<ReplanSummary, WireError> {
    Ok(ReplanSummary {
        makespan_bits: r.u64()?,
        num_waves: r.u32()?,
        plan_fingerprint: r.u64()?,
        new_curve_fits: r.u32()?,
        cache_hits: r.u32()?,
        warm: r.bool()?,
        levels_total: r.u32()?,
        levels_reused: r.u32()?,
        placement_reused: r.bool()?,
        cache: CacheTelemetry {
            bytes: r.u64()? as usize,
            evictions: r.u64()?,
        },
        devices_lost: r.u32()?,
        levels_replaced: r.u32()?,
        migration_bytes: r.u64()?,
        migration_cost_bits: r.u64()?,
        rematerialized_metaops: r.u32()?,
        restore_bytes: r.u64()?,
    })
}

impl Response {
    /// Encodes the response as one complete frame (length prefix included).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Self::HelloAck { proto_version } => {
                put_u8(&mut p, TAG_HELLO_ACK);
                put_u16(&mut p, *proto_version);
            }
            Self::Accepted { tenant } => {
                put_u8(&mut p, TAG_ACCEPTED);
                put_u64(&mut p, *tenant);
            }
            Self::PlanReady {
                tenant,
                outcome,
                error,
                topology_change,
                coalesced,
                queue_wait_ns,
                plan_time_ns,
            } => {
                put_u8(&mut p, TAG_PLAN_READY);
                put_u64(&mut p, *tenant);
                put_summary(&mut p, outcome);
                match error {
                    None => put_bool(&mut p, false),
                    Some(message) => {
                        put_bool(&mut p, true);
                        put_str(&mut p, message);
                    }
                }
                put_bool(&mut p, *topology_change);
                put_u32(&mut p, *coalesced);
                put_u64(&mut p, *queue_wait_ns);
                put_u64(&mut p, *plan_time_ns);
            }
            Self::Rejected {
                tenant,
                retry_hint_ns,
                throttled,
            } => {
                put_u8(&mut p, TAG_REJECTED);
                put_u64(&mut p, *tenant);
                put_u64(&mut p, *retry_hint_ns);
                put_bool(&mut p, *throttled);
            }
            Self::Stats(stats) => {
                put_u8(&mut p, TAG_STATS_REPLY);
                put_u64(&mut p, stats.submitted);
                put_u64(&mut p, stats.rejected);
                put_u64(&mut p, stats.throttled);
                put_u64(&mut p, stats.replans);
                put_u64(&mut p, stats.topology_replans);
                put_u64(&mut p, stats.errors);
                put_u64(&mut p, stats.plan_nanos);
                put_u64(&mut p, stats.rematerialized_metaops);
                put_u64(&mut p, stats.restore_bytes);
            }
            Self::TopologyAck { workers } => {
                put_u8(&mut p, TAG_TOPOLOGY_ACK);
                put_u32(&mut p, *workers);
            }
            Self::Error { code, message } => {
                put_u8(&mut p, TAG_ERROR);
                put_u16(&mut p, *code as u16);
                put_str(&mut p, message);
            }
        }
        frame(p)
    }

    /// Decodes a response from one frame payload (no length prefix).
    ///
    /// # Errors
    ///
    /// Any [`WireError`]: strict decoding rejects unknown tags, truncation
    /// and trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let response = match r.u8()? {
            TAG_HELLO_ACK => Self::HelloAck {
                proto_version: r.u16()?,
            },
            TAG_ACCEPTED => Self::Accepted { tenant: r.u64()? },
            TAG_PLAN_READY => {
                let tenant = r.u64()?;
                let outcome = read_summary(&mut r)?;
                let error = if r.bool()? { Some(r.str()?) } else { None };
                Self::PlanReady {
                    tenant,
                    outcome,
                    error,
                    topology_change: r.bool()?,
                    coalesced: r.u32()?,
                    queue_wait_ns: r.u64()?,
                    plan_time_ns: r.u64()?,
                }
            }
            TAG_REJECTED => Self::Rejected {
                tenant: r.u64()?,
                retry_hint_ns: r.u64()?,
                throttled: r.bool()?,
            },
            TAG_STATS_REPLY => Self::Stats(WireStats {
                submitted: r.u64()?,
                rejected: r.u64()?,
                throttled: r.u64()?,
                replans: r.u64()?,
                topology_replans: r.u64()?,
                errors: r.u64()?,
                plan_nanos: r.u64()?,
                rematerialized_metaops: r.u64()?,
                restore_bytes: r.u64()?,
            }),
            TAG_TOPOLOGY_ACK => Self::TopologyAck { workers: r.u32()? },
            TAG_ERROR => {
                let code = ErrorCode::from_u16(r.u16()?)?;
                let message = r.str()?;
                Self::Error { code, message }
            }
            other => return Err(WireError::UnknownTag(other)),
        };
        r.finish()?;
        Ok(response)
    }
}

/// Converts a nanosecond wire field back to a [`Duration`].
#[must_use]
pub fn duration_from_ns(ns: u64) -> Duration {
    Duration::from_nanos(ns)
}

// ---------------------------------------------------------------------------
// Incremental frame decoding
// ---------------------------------------------------------------------------

/// Reassembles frames from an arbitrary-chunked byte stream.
///
/// Both ends of a nonblocking connection feed whatever bytes `read` produced
/// into [`FrameDecoder::extend`] and pull complete frame payloads out of
/// [`FrameDecoder::next_frame`] — partial frames simply stay buffered until
/// the rest arrives. An oversized length prefix is rejected as soon as the
/// four header bytes are in, before any payload is buffered.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted opportunistically.
    start: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds freshly read bytes into the decoder.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: keeps the buffer bounded by the largest
        // in-flight frame instead of the connection's lifetime traffic.
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame payload, if one is buffered.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversized`] when a frame announces a payload above
    /// [`MAX_FRAME_LEN`]; the decoder is poisoned for the connection (the
    /// caller must close it — the stream can no longer be framed).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let avail = &self.buf[self.start..];
        if avail.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..FRAME_HEADER_LEN].try_into().unwrap()) as usize;
        if len > MAX_FRAME_LEN {
            return Err(WireError::Oversized { len });
        }
        if avail.len() < FRAME_HEADER_LEN + len {
            return Ok(None);
        }
        let payload = avail[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len].to_vec();
        self.start += FRAME_HEADER_LEN + len;
        Ok(Some(payload))
    }

    /// Bytes currently buffered (partial frame waiting for more input).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_graph::{GraphBuilder, XorShift64Star};

    /// A seeded random-but-valid graph: a chain per task with varying kinds,
    /// shapes, overridden costs and shared params — exercising every field of
    /// the wire format.
    fn random_graph(rng: &mut XorShift64Star) -> ComputationGraph {
        let mut b = GraphBuilder::new();
        let num_tasks = 1 + (rng.next_u64() % 3) as usize;
        for t in 0..num_tasks {
            let m = Modality::ALL[(rng.next_u64() % 9) as usize];
            let batch = 1 + (rng.next_u64() % 32) as u32;
            let task = b.add_task(format!("task-{t}"), [m, Modality::Text], batch);
            let layers = 1 + (rng.next_u64() % 5) as usize;
            let chain = b
                .add_op_chain(
                    task,
                    OpKind::Encoder(m),
                    TensorShape::new(batch, m.typical_sequence_length(), 768),
                    layers,
                )
                .unwrap();
            let loss = b
                .add_op(
                    task,
                    OpKind::ContrastiveLoss,
                    TensorShape::new(batch, 1, 768),
                )
                .unwrap();
            b.add_flow(*chain.last().unwrap(), loss).unwrap();
        }
        b.build().unwrap()
    }

    fn roundtrip_request(request: &Request) {
        let bytes = request.encode();
        let mut decoder = FrameDecoder::new();
        decoder.extend(&bytes);
        let payload = decoder.next_frame().unwrap().expect("complete frame");
        let decoded = Request::decode(&payload).unwrap();
        assert_eq!(
            decoded.encode(),
            bytes,
            "re-encoding a decoded request must be bit-identical"
        );
    }

    #[test]
    fn requests_roundtrip_bit_identically_under_seeded_draws() {
        let mut rng = XorShift64Star::new(0x5EED);
        for round in 0..24 {
            let graph = Arc::new(random_graph(&mut rng));
            roundtrip_request(&Request::SubmitGraph {
                tenant: rng.next_u64(),
                graph,
            });
            let removed: Vec<DeviceId> = (0..(rng.next_u64() % 4))
                .map(|_| DeviceId((rng.next_u64() % 64) as u32))
                .collect();
            let restored: Vec<DeviceId> = (0..(rng.next_u64() % 4))
                .map(|_| DeviceId((rng.next_u64() % 64) as u32))
                .collect();
            roundtrip_request(&Request::Topology { removed, restored });
            roundtrip_request(&Request::Hello {
                proto_version: (rng.next_u64() % 8) as u16,
            });
            roundtrip_request(&Request::Stats);
            roundtrip_request(&Request::Shutdown);
            assert!(round < 24);
        }
    }

    #[test]
    fn decoded_graphs_are_semantically_identical() {
        let mut rng = XorShift64Star::new(0xBEEF);
        for _ in 0..16 {
            let graph = random_graph(&mut rng);
            let mut bytes = Vec::new();
            encode_graph(&graph, &mut bytes);
            assert_eq!(bytes.len(), graph_wire_len(&graph), "length oracle drifts");
            let mut r = Reader::new(&bytes);
            let decoded = decode_graph(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(decoded.ops(), graph.ops());
            assert_eq!(decoded.edges(), graph.edges());
            assert_eq!(decoded.tasks(), graph.tasks());
        }
    }

    #[test]
    fn responses_roundtrip_bit_identically_under_seeded_draws() {
        let mut rng = XorShift64Star::new(0xFACE);
        for _ in 0..32 {
            let summary = ReplanSummary {
                makespan_bits: rng.next_u64(),
                num_waves: (rng.next_u64() % 1000) as u32,
                plan_fingerprint: rng.next_u64(),
                new_curve_fits: (rng.next_u64() % 100) as u32,
                cache_hits: (rng.next_u64() % 100) as u32,
                warm: rng.next_u64() % 2 == 0,
                levels_total: (rng.next_u64() % 40) as u32,
                levels_reused: (rng.next_u64() % 40) as u32,
                placement_reused: rng.next_u64() % 2 == 0,
                cache: CacheTelemetry {
                    bytes: (rng.next_u64() % (1 << 30)) as usize,
                    evictions: rng.next_u64() % 1000,
                },
                devices_lost: (rng.next_u64() % 8) as u32,
                levels_replaced: (rng.next_u64() % 40) as u32,
                migration_bytes: rng.next_u64(),
                migration_cost_bits: rng.next_u64(),
                rematerialized_metaops: (rng.next_u64() % 64) as u32,
                restore_bytes: rng.next_u64(),
            };
            let responses = [
                Response::HelloAck {
                    proto_version: (rng.next_u64() % 4) as u16,
                },
                Response::Accepted {
                    tenant: rng.next_u64(),
                },
                Response::PlanReady {
                    tenant: rng.next_u64(),
                    outcome: summary,
                    error: if rng.next_u64() % 2 == 0 {
                        None
                    } else {
                        Some("planner failed".to_string())
                    },
                    topology_change: rng.next_u64() % 2 == 0,
                    coalesced: 1 + (rng.next_u64() % 12) as u32,
                    queue_wait_ns: rng.next_u64(),
                    plan_time_ns: rng.next_u64(),
                },
                Response::Rejected {
                    tenant: rng.next_u64(),
                    retry_hint_ns: rng.next_u64(),
                    throttled: rng.next_u64() % 2 == 0,
                },
                Response::Stats(WireStats {
                    submitted: rng.next_u64(),
                    rejected: rng.next_u64(),
                    throttled: rng.next_u64(),
                    replans: rng.next_u64(),
                    topology_replans: rng.next_u64(),
                    errors: rng.next_u64(),
                    plan_nanos: rng.next_u64(),
                    rematerialized_metaops: rng.next_u64(),
                    restore_bytes: rng.next_u64(),
                }),
                Response::TopologyAck {
                    workers: (rng.next_u64() % 64) as u32,
                },
                Response::Error {
                    code: ErrorCode::InvalidGraph,
                    message: "self-loop".to_string(),
                },
            ];
            for response in responses {
                let bytes = response.encode();
                let payload = &bytes[FRAME_HEADER_LEN..];
                let decoded = Response::decode(payload).unwrap();
                assert_eq!(decoded, response);
                assert_eq!(decoded.encode(), bytes);
            }
        }
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let mut rng = XorShift64Star::new(1);
        let graph = Arc::new(random_graph(&mut rng));
        let bytes = Request::SubmitGraph { tenant: 1, graph }.encode();
        // Every strict prefix of the payload fails to decode.
        for cut in 1..(bytes.len() - FRAME_HEADER_LEN).min(64) {
            let payload = &bytes[FRAME_HEADER_LEN..bytes.len() - cut];
            assert!(
                Request::decode(payload).is_err(),
                "cut {cut} decoded anyway"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let bytes = Request::Stats.encode();
        let mut payload = bytes[FRAME_HEADER_LEN..].to_vec();
        payload.push(0);
        assert_eq!(
            Request::decode(&payload),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn unknown_tags_and_bad_enums_are_rejected() {
        assert_eq!(Request::decode(&[0x7f]), Err(WireError::UnknownTag(0x7f)));
        assert_eq!(Response::decode(&[0x00]), Err(WireError::UnknownTag(0x00)));
        // A modality tag of 200 is out of range.
        let mut payload = vec![TAG_SUBMIT_GRAPH];
        put_u64(&mut payload, 5);
        put_u32(&mut payload, 1); // one task
        put_u32(&mut payload, 0); // task id
        put_str(&mut payload, "t");
        put_u8(&mut payload, 1); // one modality
        put_u8(&mut payload, 200); // bad tag
        assert_eq!(
            Request::decode(&payload),
            Err(WireError::BadEnum {
                what: "modality",
                value: 200
            })
        );
    }

    #[test]
    fn oversized_frames_are_rejected_at_the_header() {
        let mut decoder = FrameDecoder::new();
        let bad_len = (MAX_FRAME_LEN + 1) as u32;
        decoder.extend(&bad_len.to_le_bytes());
        assert_eq!(
            decoder.next_frame(),
            Err(WireError::Oversized {
                len: MAX_FRAME_LEN + 1
            })
        );
    }

    #[test]
    fn frame_decoder_reassembles_byte_by_byte() {
        let a = Request::Hello {
            proto_version: PROTO_VERSION,
        }
        .encode();
        let b = Request::Stats.encode();
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        let mut decoder = FrameDecoder::new();
        let mut frames = Vec::new();
        for &byte in &stream {
            decoder.extend(&[byte]);
            while let Some(frame) = decoder.next_frame().unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], a[FRAME_HEADER_LEN..].to_vec());
        assert_eq!(frames[1], b[FRAME_HEADER_LEN..].to_vec());
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn invalid_graphs_are_rejected_by_decode() {
        // A graph with a self-loop edge: structurally well-formed bytes,
        // semantically invalid — ComputationGraph::new must veto it.
        let mut payload = vec![TAG_SUBMIT_GRAPH];
        put_u64(&mut payload, 9);
        put_u32(&mut payload, 1); // one task
        put_u32(&mut payload, 0);
        put_str(&mut payload, "t");
        put_u8(&mut payload, 1);
        put_u8(&mut payload, 0); // text
        put_u32(&mut payload, 8);
        put_u32(&mut payload, 1); // one op
        put_u32(&mut payload, 0); // op id
        put_u8(&mut payload, 7); // contrastive loss
        put_u32(&mut payload, 0); // task
        put_u32(&mut payload, 8);
        put_u32(&mut payload, 1);
        put_u32(&mut payload, 768);
        put_u64(&mut payload, 1.0f64.to_bits());
        put_u64(&mut payload, 2);
        put_u64(&mut payload, 3);
        put_u16(&mut payload, 0); // no params
        put_u32(&mut payload, 1); // one edge
        put_u32(&mut payload, 0); // 0 -> 0: self-loop
        put_u32(&mut payload, 0);
        assert!(matches!(
            Request::decode(&payload),
            Err(WireError::InvalidGraph(_))
        ));
    }
}
