//! The multi-tenant planning daemon: sharded workers, bounded queues,
//! explicit backpressure, per-tenant fairness and hot re-sharding.

use std::collections::HashMap;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spindle_cluster::{ClusterSpec, DeviceId};
use spindle_core::{PlanError, PlannerConfig, ReplanOutcome, SpindleSession};
use spindle_estimator::ScalabilityEstimator;
use spindle_graph::ComputationGraph;

use crate::backoff::MIN_RETRY_HINT;
use crate::proto::graph_wire_len;
use crate::{CoalescingQueue, FairnessConfig, TenantThrottle};

// Sessions migrate between worker threads during `resize`; this fails to
// compile if `SpindleSession` ever stops being `Send`.
#[allow(dead_code)]
fn assert_send<T: Send>() {}
const _: fn() = assert_send::<SpindleSession>;

/// Tunable knobs of a [`PlanService`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Worker threads; tenants map onto them by rendezvous hashing over
    /// stable worker keys (see [`PlanService::resize`]). Defaults to the
    /// machine's available parallelism.
    pub workers: usize,
    /// Bound of each worker's request queue. Submissions beyond it are
    /// rejected with [`SubmitError::QueueFull`] — explicit backpressure
    /// instead of unbounded memory growth.
    pub queue_depth: usize,
    /// Planner configuration of every tenant session (placement strategy,
    /// bisection epsilon, cache budgets).
    pub planner: PlannerConfig,
    /// Per-tenant fairness: admission quotas, DRR weights and the drain
    /// quantum. The default enforces nothing and drains strictly FIFO.
    pub fairness: FairnessConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            queue_depth: 64,
            planner: PlannerConfig::default(),
            fairness: FairnessConfig::default(),
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The tenant's worker queue is at its configured depth. Back off for
    /// roughly `retry_hint` (the service's average re-plan time) and retry;
    /// newer submissions for the same tenant supersede older ones anyway.
    QueueFull {
        /// Suggested backoff before retrying.
        retry_hint: Duration,
    },
    /// The tenant's fairness quota (submission rate or byte volume) is
    /// exhausted; nothing was queued or charged.
    Throttled {
        /// Exact wait until the tenant's buckets would admit the submission.
        retry_hint: Duration,
    },
    /// The tenant's worker is gone (the service is shutting down or the
    /// worker panicked); the submission can never be served.
    WorkerGone,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::QueueFull { retry_hint } => {
                write!(f, "worker queue full; retry in ~{retry_hint:?}")
            }
            Self::Throttled { retry_hint } => {
                write!(f, "tenant quota exhausted; retry in ~{retry_hint:?}")
            }
            Self::WorkerGone => write!(f, "worker gone; service is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One finished re-plan, delivered on the service's completion channel.
#[derive(Debug)]
pub struct Completion {
    /// The tenant that was re-planned.
    pub tenant: u64,
    /// The re-plan outcome (plan plus cache-warmth probe), or the planning
    /// error.
    pub result: Result<ReplanOutcome, PlanError>,
    /// `true` when this re-plan was triggered by a cluster topology change
    /// ([`PlanService::submit_topology`]) rather than a task-mix event.
    pub topology_change: bool,
    /// Churn events folded into this re-plan (≥ 1; > 1 means coalescing
    /// saved `coalesced - 1` full re-plans).
    pub coalesced: usize,
    /// Time from the oldest folded event's submission until planning began.
    pub queue_wait: Duration,
    /// Time spent planning.
    pub plan_time: Duration,
}

impl Completion {
    /// End-to-end latency of the oldest folded event: queue wait plus
    /// planning time.
    #[must_use]
    pub fn total_latency(&self) -> Duration {
        self.queue_wait + self.plan_time
    }
}

/// A snapshot of the service-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Submissions accepted onto a worker queue.
    pub submitted: u64,
    /// Submissions rejected with [`SubmitError::QueueFull`].
    pub rejected: u64,
    /// Submissions rejected with [`SubmitError::Throttled`] (per-tenant
    /// quota, not queue depth).
    pub throttled: u64,
    /// Coalesced re-plans executed for task-mix events.
    pub replans: u64,
    /// Re-plans executed because the cluster topology changed (one per
    /// affected tenant per change; not counted in `replans`, so the
    /// coalescing ratio keeps its events-per-replan meaning).
    pub topology_replans: u64,
    /// Re-plans that failed with a [`PlanError`], plus worker loops that
    /// panicked.
    pub errors: u64,
    /// Total time spent planning, nanoseconds.
    pub plan_nanos: u64,
    /// MetaOps that lost every replica to topology changes and had to be
    /// re-materialised from checkpoints, summed over all tenants.
    pub rematerialized_metaops: u64,
    /// State bytes those re-materialisations read back from the checkpoint
    /// tier, summed over all tenants.
    pub restore_bytes: u64,
}

impl ServiceStats {
    /// Accepted events per executed re-plan (1.0 before any re-plan ran;
    /// events still queued inflate the ratio until they are served, so read
    /// it after a drain for an exact figure).
    #[must_use]
    pub fn coalescing_ratio(&self) -> f64 {
        if self.replans == 0 {
            return 1.0;
        }
        self.submitted as f64 / self.replans as f64
    }

    /// Mean planning time per re-plan.
    #[must_use]
    pub fn avg_plan_time(&self) -> Duration {
        Duration::from_nanos(self.plan_nanos / self.replans.max(1))
    }
}

#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    throttled: AtomicU64,
    replans: AtomicU64,
    topology_replans: AtomicU64,
    errors: AtomicU64,
    plan_nanos: AtomicU64,
    rematerialized_metaops: AtomicU64,
    restore_bytes: AtomicU64,
}

/// One tenant's state in flight between workers during a re-shard.
struct TenantMove {
    tenant: u64,
    session: Box<SpindleSession>,
    last_graph: Option<Arc<ComputationGraph>>,
}

enum Request {
    Event {
        tenant: u64,
        weight: u32,
        graph: Arc<ComputationGraph>,
        submitted: Instant,
    },
    Topology {
        removed: Vec<DeviceId>,
        restored: Vec<DeviceId>,
        submitted: Instant,
    },
    /// Re-shard directive for a surviving worker: drain everything pending,
    /// then emit a [`TenantMove`] for every owned tenant whose rendezvous
    /// owner under `keys` is no longer this worker.
    Reshard {
        keys: Arc<Vec<u64>>,
        moves: Sender<TenantMove>,
    },
    /// Re-shard directive for a retiring worker: drain everything pending,
    /// emit every owned tenant, then exit.
    Retire {
        moves: Sender<TenantMove>,
    },
    /// A tenant migrating in from another worker during a re-shard.
    Adopt {
        tenant: u64,
        session: Box<SpindleSession>,
        last_graph: Option<Arc<ComputationGraph>>,
    },
    Shutdown,
}

/// One worker shard: a stable rendezvous key plus the queue feeding its
/// thread.
#[derive(Clone)]
struct Shard {
    key: u64,
    sender: SyncSender<Request>,
}

/// SplitMix64: the rendezvous mixing function. Stable across runs and
/// transports, so tenant→worker assignment is reproducible.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Highest-random-weight score of placing `tenant` on the worker with `key`.
fn rendezvous_score(key: u64, tenant: u64) -> u64 {
    splitmix64(key ^ splitmix64(tenant))
}

/// The rendezvous owner of `tenant` among `keys` (highest score wins).
fn owner_key(keys: &[u64], tenant: u64) -> u64 {
    *keys
        .iter()
        .max_by_key(|&&key| rendezvous_score(key, tenant))
        .expect("at least one worker key")
}

/// A long-lived multi-tenant planning daemon.
///
/// Tenants are sharded onto worker threads by *rendezvous (highest-random-
/// weight) hashing* over stable worker keys; each worker owns the
/// [`SpindleSession`]s of its tenants outright (no session is ever shared
/// across threads), which guarantees per-tenant FIFO ordering: a tenant's
/// re-plans execute in submission order, always against its latest submitted
/// graph. Rendezvous hashing is what makes [`PlanService::resize`] cheap —
/// growing or shrinking the worker pool only moves the tenants whose
/// highest-scoring key changed, provably the minimum possible.
///
/// Workers drain their bounded queue greedily between re-plans and fold
/// queued events per tenant (see [`CoalescingQueue`]); the queue drains by
/// deficit round-robin using the weights of the service's
/// [`FairnessConfig`], and admission is rate-limited per tenant by a
/// [`TenantThrottle`] shared by every transport. All tenant sessions of a
/// worker pool one [`ScalabilityEstimator`], so tenants with overlapping
/// operator signatures share fitted curves (a migrated tenant keeps the
/// estimator of its origin worker — cross-worker sharing is a cost
/// optimisation, never a correctness input, since plans are deterministic).
///
/// Results arrive asynchronously on the completion channel returned by
/// [`PlanService::start`].
#[derive(Debug)]
pub struct PlanService {
    shards: RwLock<Vec<Shard>>,
    handles: Mutex<Vec<(u64, JoinHandle<()>)>>,
    counters: Arc<Counters>,
    queue_depth: usize,
    throttle: Mutex<TenantThrottle>,
    /// Retained so `resize` can wire new workers to the same completion
    /// channel; drops with the service, disconnecting the receiver.
    completion_tx: Sender<Completion>,
    cluster: Arc<ClusterSpec>,
    planner: PlannerConfig,
    quantum: u64,
    next_key: AtomicU64,
}

impl fmt::Debug for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shard").field("key", &self.key).finish()
    }
}

impl PlanService {
    /// Starts the service's worker threads for `cluster` and returns it with
    /// the receiving end of its completion channel.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers` or `config.queue_depth` is zero.
    #[must_use]
    pub fn start(
        cluster: impl Into<Arc<ClusterSpec>>,
        config: ServiceConfig,
    ) -> (Self, Receiver<Completion>) {
        assert!(config.workers > 0, "service needs at least one worker");
        assert!(config.queue_depth > 0, "queue depth must be positive");
        let cluster = cluster.into();
        let counters = Arc::new(Counters::default());
        let (completion_tx, completion_rx) = std::sync::mpsc::channel();
        let quantum = config.fairness.quantum;
        let mut shards = Vec::with_capacity(config.workers);
        let mut handles = Vec::with_capacity(config.workers);
        for key in 0..config.workers as u64 {
            let (sender, handle) = spawn_worker(
                key,
                config.queue_depth,
                &cluster,
                config.planner,
                quantum,
                &counters,
                &completion_tx,
            );
            shards.push(Shard { key, sender });
            handles.push((key, handle));
        }
        (
            Self {
                shards: RwLock::new(shards),
                handles: Mutex::new(handles),
                counters,
                queue_depth: config.queue_depth,
                throttle: Mutex::new(TenantThrottle::new(config.fairness)),
                completion_tx,
                cluster,
                planner: config.planner,
                quantum,
                next_key: AtomicU64::new(config.workers as u64),
            },
            completion_rx,
        )
    }

    /// Worker threads the service currently runs.
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.shards.read().expect("shards lock").len()
    }

    /// Per-worker queue bound.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Submits a churn event: `tenant`'s task mix became `graph`. Returns
    /// immediately; the re-plan executes on the tenant's worker and its
    /// [`Completion`] arrives on the completion channel. Never blocks — a
    /// full worker queue rejects with [`SubmitError::QueueFull`] and a
    /// retry hint, an exhausted tenant quota with [`SubmitError::Throttled`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::Throttled`] when the tenant's admission quota is
    /// exhausted, [`SubmitError::QueueFull`] under backpressure, or
    /// [`SubmitError::WorkerGone`] if the tenant's worker has exited.
    pub fn submit(&self, tenant: u64, graph: Arc<ComputationGraph>) -> Result<(), SubmitError> {
        let weight = {
            let mut throttle = self.throttle.lock().expect("throttle lock");
            if throttle.enforcing() {
                // The byte cost is the graph's wire length, so the TCP and
                // in-process transports charge identical figures.
                let bytes = graph_wire_len(&graph);
                if let Err(wait) = throttle.admit(tenant, bytes, Instant::now()) {
                    self.counters.throttled.fetch_add(1, Ordering::Relaxed);
                    return Err(SubmitError::Throttled {
                        retry_hint: wait.max(MIN_RETRY_HINT),
                    });
                }
            }
            throttle.config().policy(tenant).effective_weight()
        };
        let shards = self.shards.read().expect("shards lock");
        let Some(shard) = shards
            .iter()
            .max_by_key(|shard| rendezvous_score(shard.key, tenant))
        else {
            return Err(SubmitError::WorkerGone);
        };
        match shard.sender.try_send(Request::Event {
            tenant,
            weight,
            graph,
            submitted: Instant::now(),
        }) {
            Ok(()) => {
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::QueueFull {
                    retry_hint: self.retry_hint(),
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::WorkerGone),
        }
    }

    /// Submits a cluster topology change: `removed` devices left the pool
    /// and `restored` devices rejoined it. The change is broadcast to every
    /// worker; each worker applies it to all of its tenant sessions and
    /// re-plans every tenant's latest task mix on the changed device set,
    /// delivering one [`Completion`] per affected tenant (with
    /// `topology_change == true`). Tenants are isolated: one tenant's
    /// re-plan failure — or panic — becomes that tenant's completion error,
    /// never a worker death.
    ///
    /// Unlike [`Self::submit`], topology changes use a *blocking* enqueue:
    /// they are rare, must not be dropped under backpressure, and every
    /// worker has to observe the same device set. Returns the number of
    /// workers notified.
    ///
    /// # Errors
    ///
    /// [`SubmitError::WorkerGone`] if no worker is alive to apply the
    /// change.
    pub fn submit_topology(
        &self,
        removed: &[DeviceId],
        restored: &[DeviceId],
    ) -> Result<usize, SubmitError> {
        let submitted = Instant::now();
        let mut notified = 0;
        for shard in self.shards.read().expect("shards lock").iter() {
            if shard
                .sender
                .send(Request::Topology {
                    removed: removed.to_vec(),
                    restored: restored.to_vec(),
                    submitted,
                })
                .is_ok()
            {
                notified += 1;
            }
        }
        if notified == 0 {
            return Err(SubmitError::WorkerGone);
        }
        Ok(notified)
    }

    /// Re-shards the service to `workers` worker threads *without dropping a
    /// single accepted submission*, returning the number of tenants that
    /// migrated.
    ///
    /// Concurrent [`submit`](Self::submit)s block for the duration (they
    /// take the shard read lock), so every submission is either accepted
    /// before the re-shard — and then drained by its owning worker before
    /// that worker migrates or retires — or routed by the new shard table
    /// after it. Rendezvous hashing keeps moves minimal: growing from *n* to
    /// *m* workers moves only tenants whose highest-scoring key is new
    /// (≈ `(m-n)/m` of them), and shrinking moves only the retired workers'
    /// tenants. A migrating tenant's in-flight work is fully planned by its
    /// old worker first, so per-tenant FIFO ordering survives the move.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn resize(&self, workers: usize) -> usize {
        assert!(workers > 0, "service needs at least one worker");
        let mut shards = self.shards.write().expect("shards lock");
        if shards.len() == workers {
            return 0;
        }
        let mut victims: Vec<Shard> = Vec::new();
        if workers > shards.len() {
            let mut handles = self.handles.lock().expect("handles lock");
            for _ in shards.len()..workers {
                let key = self.next_key.fetch_add(1, Ordering::Relaxed);
                let (sender, handle) = spawn_worker(
                    key,
                    self.queue_depth,
                    &self.cluster,
                    self.planner,
                    self.quantum,
                    &self.counters,
                    &self.completion_tx,
                );
                shards.push(Shard { key, sender });
                handles.push((key, handle));
            }
        } else {
            victims = shards.split_off(workers);
        }
        let keys: Arc<Vec<u64>> = Arc::new(shards.iter().map(|s| s.key).collect());
        let (moves_tx, moves_rx) = std::sync::mpsc::channel();
        for shard in shards.iter() {
            let _ = shard.sender.send(Request::Reshard {
                keys: Arc::clone(&keys),
                moves: moves_tx.clone(),
            });
        }
        for victim in &victims {
            let _ = victim.sender.send(Request::Retire {
                moves: moves_tx.clone(),
            });
        }
        drop(moves_tx);
        // Workers drain their queues, then stream their leaving tenants here;
        // the channel disconnects once every worker finished migrating.
        let mut moved = 0;
        for TenantMove {
            tenant,
            session,
            last_graph,
        } in moves_rx
        {
            let owner = owner_key(&keys, tenant);
            let shard = shards
                .iter()
                .find(|s| s.key == owner)
                .expect("owner key is in the new shard set");
            // Blocking send: adoption must not be lost, and the owner is
            // alive and draining.
            let _ = shard.sender.send(Request::Adopt {
                tenant,
                session,
                last_graph,
            });
            moved += 1;
        }
        // Retired workers exit after emitting their tenants; reap them.
        let victim_keys: Vec<u64> = victims.iter().map(|v| v.key).collect();
        drop(victims);
        let mut handles = self.handles.lock().expect("handles lock");
        let mut remaining = Vec::with_capacity(handles.len());
        for (key, handle) in handles.drain(..) {
            if victim_keys.contains(&key) {
                let _ = handle.join();
            } else {
                remaining.push((key, handle));
            }
        }
        *handles = remaining;
        moved
    }

    /// The backoff the service suggests on [`SubmitError::QueueFull`]: its
    /// average re-plan time so far (at least 100µs).
    #[must_use]
    pub fn retry_hint(&self) -> Duration {
        let replans = self.counters.replans.load(Ordering::Relaxed);
        if replans == 0 {
            return MIN_RETRY_HINT;
        }
        let avg = self.counters.plan_nanos.load(Ordering::Relaxed) / replans;
        Duration::from_nanos(avg).max(MIN_RETRY_HINT)
    }

    /// A snapshot of the service-wide counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            throttled: self.counters.throttled.load(Ordering::Relaxed),
            replans: self.counters.replans.load(Ordering::Relaxed),
            topology_replans: self.counters.topology_replans.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            plan_nanos: self.counters.plan_nanos.load(Ordering::Relaxed),
            rematerialized_metaops: self.counters.rematerialized_metaops.load(Ordering::Relaxed),
            restore_bytes: self.counters.restore_bytes.load(Ordering::Relaxed),
        }
    }

    /// Stops the service: every worker drains its remaining queue (accepted
    /// events are never dropped), then exits. Returns the final counter
    /// snapshot. Completions of the drained events are still delivered on
    /// the completion channel before it disconnects.
    pub fn shutdown(self) -> ServiceStats {
        self.stop_workers();
        self.stats()
    }

    /// Sends shutdown to every worker, drops the senders and joins.
    fn stop_workers(&self) {
        {
            let shards = self.shards.read().expect("shards lock");
            for shard in shards.iter() {
                // A blocking send is correct here: the worker keeps
                // draining, so the shutdown marker always fits eventually.
                let _ = shard.sender.send(Request::Shutdown);
            }
        }
        self.shards.write().expect("shards lock").clear();
        let mut handles = self.handles.lock().expect("handles lock");
        for (_, handle) in handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for PlanService {
    fn drop(&mut self) {
        // Dropping without `shutdown()` still joins the workers: clearing
        // the shards disconnects the queues, and a disconnected queue ends
        // the worker loop after its drain. (After `shutdown()` this is a
        // no-op: shards and handles are already empty.)
        self.shards.write().expect("shards lock").clear();
        let mut handles = self.handles.lock().expect("handles lock");
        for (_, handle) in handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Spawns one worker thread with the given stable rendezvous `key`.
fn spawn_worker(
    key: u64,
    queue_depth: usize,
    cluster: &Arc<ClusterSpec>,
    planner: PlannerConfig,
    quantum: u64,
    counters: &Arc<Counters>,
    completions: &Sender<Completion>,
) -> (SyncSender<Request>, JoinHandle<()>) {
    let (tx, rx) = std::sync::mpsc::sync_channel(queue_depth);
    let cluster = Arc::clone(cluster);
    let counters = Arc::clone(counters);
    let completions = completions.clone();
    let handle = std::thread::Builder::new()
        .name(format!("spindle-svc-{key}"))
        .spawn(move || {
            // The whole loop is panic-guarded: a panic that escapes the
            // per-tenant guards still ends the worker cleanly (its queue
            // disconnects, submit reports WorkerGone, shutdown's join never
            // hangs) and is surfaced on the error counter.
            let guarded = std::panic::catch_unwind(AssertUnwindSafe(|| {
                worker_loop(
                    key,
                    &rx,
                    &cluster,
                    planner,
                    quantum,
                    &counters,
                    &completions,
                );
            }));
            if guarded.is_err() {
                counters.errors.fetch_add(1, Ordering::Relaxed);
            }
        })
        .expect("spawning a service worker thread");
    (tx, handle)
}

/// Runs one tenant's re-plan behind a panic guard. A planner panic poisons
/// only that tenant: it is reported as [`PlanError::Panicked`] and the
/// caller discards the tenant's session.
fn guarded_replan(
    session: &mut SpindleSession,
    graph: &ComputationGraph,
) -> Result<ReplanOutcome, PlanError> {
    std::panic::catch_unwind(AssertUnwindSafe(|| session.replan(graph)))
        .unwrap_or_else(|payload| Err(panic_error(&payload)))
}

/// Maps a caught panic payload to the per-tenant [`PlanError::Panicked`]
/// the completion channel reports.
fn panic_error(payload: &(dyn std::any::Any + Send)) -> PlanError {
    let message = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    PlanError::Panicked { message }
}

struct WorkerState {
    sessions: HashMap<u64, SpindleSession>,
    last_graph: HashMap<u64, Arc<ComputationGraph>>,
    /// The devices currently removed from the cluster, applied to sessions
    /// created after the topology change so new tenants see the same
    /// survivor set as old ones.
    removed_now: Vec<DeviceId>,
}

/// A pending re-shard directive; `keys: None` means this worker retires.
struct Migration {
    keys: Option<Arc<Vec<u64>>>,
    moves: Sender<TenantMove>,
}

fn worker_loop(
    key: u64,
    rx: &Receiver<Request>,
    cluster: &Arc<ClusterSpec>,
    planner: PlannerConfig,
    quantum: u64,
    counters: &Counters,
    completions: &Sender<Completion>,
) {
    let estimator = Arc::new(ScalabilityEstimator::new(cluster));
    let mut state = WorkerState {
        sessions: HashMap::new(),
        last_graph: HashMap::new(),
        removed_now: Vec::new(),
    };
    let mut queue = CoalescingQueue::with_quantum(quantum);
    let mut topology: Vec<(Vec<DeviceId>, Vec<DeviceId>, Instant)> = Vec::new();
    let mut migration: Option<Migration> = None;
    let mut shutting_down = false;
    loop {
        if queue.is_empty() && topology.is_empty() && migration.is_none() {
            if shutting_down {
                break;
            }
            // Nothing pending: block for the next request.
            match rx.recv() {
                Ok(request) => apply(
                    request,
                    &mut state,
                    &mut queue,
                    &mut topology,
                    &mut migration,
                    &mut shutting_down,
                ),
                Err(_) => break,
            }
        }
        // Greedy drain: fold every queued event before planning, so a burst
        // for one tenant coalesces into a single re-plan.
        while let Ok(request) = rx.try_recv() {
            apply(
                request,
                &mut state,
                &mut queue,
                &mut topology,
                &mut migration,
                &mut shutting_down,
            );
        }
        // Topology changes first: subsequent tenant re-plans must see the
        // new device set.
        for (removed, restored, submitted) in topology.drain(..) {
            apply_topology(
                &removed,
                &restored,
                submitted,
                &mut state,
                counters,
                completions,
            );
        }
        if let Some(directive) = migration.take() {
            // Drain-before-migrate: every accepted event is planned by the
            // worker that accepted it, so migration never reorders or drops
            // a tenant's in-flight work (submissions are blocked on the
            // shard lock for the whole re-shard, so the queue is complete).
            while let Some(replan) = queue.pop() {
                plan_one(
                    replan,
                    &mut state,
                    cluster,
                    &estimator,
                    planner,
                    counters,
                    completions,
                );
            }
            let mut tenants: Vec<u64> = state.sessions.keys().copied().collect();
            tenants.sort_unstable();
            for tenant in tenants {
                let stays = directive
                    .keys
                    .as_deref()
                    .is_some_and(|keys| owner_key(keys, tenant) == key);
                if stays {
                    continue;
                }
                let session = state.sessions.remove(&tenant).expect("tenant listed");
                let last_graph = state.last_graph.remove(&tenant);
                let _ = directive.moves.send(TenantMove {
                    tenant,
                    session: Box::new(session),
                    last_graph,
                });
            }
            if directive.keys.is_none() {
                // Retired: the moves sender drops here, signalling the
                // re-shard coordinator that this worker is done.
                return;
            }
            continue;
        }
        let Some(replan) = queue.pop() else { continue };
        plan_one(
            replan,
            &mut state,
            cluster,
            &estimator,
            planner,
            counters,
            completions,
        );
    }
}

/// Plans one coalesced re-plan and delivers its completion.
fn plan_one(
    replan: crate::CoalescedReplan,
    state: &mut WorkerState,
    cluster: &Arc<ClusterSpec>,
    estimator: &Arc<ScalabilityEstimator>,
    planner: PlannerConfig,
    counters: &Counters,
    completions: &Sender<Completion>,
) {
    let queue_wait = replan.oldest_submit.elapsed();
    let removed_now = &state.removed_now;
    let session = state.sessions.entry(replan.tenant).or_insert_with(|| {
        let mut session =
            SpindleSession::with_estimator(Arc::clone(cluster), Arc::clone(estimator), planner);
        if !removed_now.is_empty() {
            // Never fails: a non-empty survivor set already planned for
            // the worker's other tenants.
            let _ = session.remove_devices(removed_now);
        }
        session
    });
    let started = Instant::now();
    let result = guarded_replan(session, &replan.graph);
    let plan_time = started.elapsed();
    counters.replans.fetch_add(1, Ordering::Relaxed);
    counters
        .plan_nanos
        .fetch_add(plan_time.as_nanos() as u64, Ordering::Relaxed);
    match &result {
        Ok(outcome) => {
            counters
                .rematerialized_metaops
                .fetch_add(outcome.rematerialized_metaops as u64, Ordering::Relaxed);
            counters
                .restore_bytes
                .fetch_add(outcome.restore_bytes, Ordering::Relaxed);
            state
                .last_graph
                .insert(replan.tenant, Arc::clone(&replan.graph));
        }
        Err(error) => {
            counters.errors.fetch_add(1, Ordering::Relaxed);
            if matches!(error, PlanError::Panicked { .. }) {
                // The session may hold half-updated caches: discard it.
                state.sessions.remove(&replan.tenant);
                state.last_graph.remove(&replan.tenant);
            }
        }
    }
    // A gone receiver just means the caller stopped listening; keep
    // draining so accepted events still update the counters.
    let _ = completions.send(Completion {
        tenant: replan.tenant,
        result,
        topology_change: false,
        coalesced: replan.coalesced,
        queue_wait,
        plan_time,
    });
}

/// Applies one topology change to every tenant session of a worker and
/// re-plans each tenant's latest task mix on the changed device set. Each
/// tenant is isolated: its failure (or panic) is its own completion error.
fn apply_topology(
    removed: &[DeviceId],
    restored: &[DeviceId],
    submitted: Instant,
    state: &mut WorkerState,
    counters: &Counters,
    completions: &Sender<Completion>,
) {
    state.removed_now.retain(|d| !restored.contains(d));
    for &d in removed {
        if !state.removed_now.contains(&d) {
            state.removed_now.push(d);
        }
    }
    let mut tenants: Vec<u64> = state.sessions.keys().copied().collect();
    tenants.sort_unstable();
    let mut poisoned = Vec::new();
    for tenant in tenants {
        let session = state.sessions.get_mut(&tenant).expect("tenant listed");
        if !restored.is_empty() {
            session.restore_devices(restored);
        }
        let shrink = if removed.is_empty() {
            Ok(0)
        } else {
            session.remove_devices(removed)
        };
        // A tenant that never completed a plan has no task mix to re-plan;
        // its session still observed the topology change above.
        let Some(graph) = state.last_graph.get(&tenant).cloned() else {
            continue;
        };
        let queue_wait = submitted.elapsed();
        let started = Instant::now();
        let result = match shrink {
            Ok(_) => guarded_replan(session, &graph),
            Err(error) => Err(error),
        };
        let plan_time = started.elapsed();
        counters.topology_replans.fetch_add(1, Ordering::Relaxed);
        if let Ok(outcome) = &result {
            counters
                .rematerialized_metaops
                .fetch_add(outcome.rematerialized_metaops as u64, Ordering::Relaxed);
            counters
                .restore_bytes
                .fetch_add(outcome.restore_bytes, Ordering::Relaxed);
        }
        if let Err(error) = &result {
            counters.errors.fetch_add(1, Ordering::Relaxed);
            if matches!(error, PlanError::Panicked { .. }) {
                poisoned.push(tenant);
            }
        }
        let _ = completions.send(Completion {
            tenant,
            result,
            topology_change: true,
            coalesced: 1,
            queue_wait,
            plan_time,
        });
    }
    for tenant in poisoned {
        state.sessions.remove(&tenant);
        state.last_graph.remove(&tenant);
    }
}

fn apply(
    request: Request,
    state: &mut WorkerState,
    queue: &mut CoalescingQueue,
    topology: &mut Vec<(Vec<DeviceId>, Vec<DeviceId>, Instant)>,
    migration: &mut Option<Migration>,
    shutting_down: &mut bool,
) {
    match request {
        Request::Event {
            tenant,
            weight,
            graph,
            submitted,
        } => {
            queue.push_weighted(tenant, weight, graph, submitted);
        }
        Request::Topology {
            removed,
            restored,
            submitted,
        } => topology.push((removed, restored, submitted)),
        Request::Reshard { keys, moves } => {
            *migration = Some(Migration {
                keys: Some(keys),
                moves,
            });
        }
        Request::Retire { moves } => {
            *migration = Some(Migration { keys: None, moves });
        }
        Request::Adopt {
            tenant,
            session,
            last_graph,
        } => {
            state.sessions.insert(tenant, *session);
            if let Some(graph) = last_graph {
                state.last_graph.insert(tenant, graph);
            }
        }
        Request::Shutdown => *shutting_down = true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};

    fn graph(batch: u32) -> Arc<ComputationGraph> {
        let mut b = GraphBuilder::new();
        let t = b.add_task("t", [Modality::Audio, Modality::Text], batch);
        let tower = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Audio),
                TensorShape::new(batch, 229, 768),
                4,
            )
            .unwrap();
        let loss = b
            .add_op(t, OpKind::ContrastiveLoss, TensorShape::new(batch, 1, 768))
            .unwrap();
        b.add_flow(*tower.last().unwrap(), loss).unwrap();
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn submissions_complete_with_valid_plans_in_fifo_order() {
        let (service, completions) = PlanService::start(
            ClusterSpec::homogeneous(1, 8),
            ServiceConfig {
                workers: 2,
                queue_depth: 16,
                ..ServiceConfig::default()
            },
        );
        assert_eq!(service.num_workers(), 2);
        for batch in [8u32, 16, 32] {
            service.submit(0, graph(batch)).unwrap();
        }
        service.submit(1, graph(8)).unwrap();
        let mut tenant0_batches = Vec::new();
        let mut tenant1 = 0;
        // 0 and 1 may land on different workers; tenant 0's events may
        // coalesce, but whatever completes must come in submission order
        // with the latest graph last.
        let mut events_seen = 0;
        while events_seen < 4 {
            let done = completions
                .recv_timeout(Duration::from_secs(30))
                .expect("completion");
            let outcome = done.result.expect("plan succeeds");
            outcome.plan.validate().unwrap();
            events_seen += done.coalesced;
            if done.tenant == 0 {
                tenant0_batches.push(outcome.plan.num_waves());
            } else {
                tenant1 += 1;
            }
            assert!(done.plan_time > Duration::ZERO);
        }
        assert!(!tenant0_batches.is_empty());
        assert_eq!(tenant1, 1);
        let stats = service.shutdown();
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.errors, 0);
        assert!(stats.replans >= 2, "at least one re-plan per tenant");
        assert!(stats.replans <= 4);
        assert!(stats.coalescing_ratio() >= 1.0);
        assert!(stats.avg_plan_time() > Duration::ZERO);
    }

    #[test]
    fn full_queue_rejects_with_retry_hint_and_drains_on_shutdown() {
        // One worker, depth 1: the worker blocks planning the first event
        // while later submissions hit the bound.
        let (service, completions) = PlanService::start(
            ClusterSpec::homogeneous(1, 8),
            ServiceConfig {
                workers: 1,
                queue_depth: 1,
                ..ServiceConfig::default()
            },
        );
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for i in 0..200u32 {
            match service.submit(u64::from(i % 4), graph(8 + (i % 4) * 8)) {
                Ok(()) => accepted += 1,
                Err(SubmitError::QueueFull { retry_hint }) => {
                    assert!(retry_hint >= Duration::from_micros(100));
                    rejected += 1;
                }
                Err(other) => panic!("worker must be alive and unthrottled: {other}"),
            }
        }
        assert!(rejected > 0, "depth-1 queue must push back");
        let stats = service.shutdown();
        assert_eq!(stats.submitted, accepted);
        assert_eq!(stats.rejected, rejected);
        assert_eq!(stats.throttled, 0, "no fairness config, no throttling");
        // Every accepted event was served (drained on shutdown), and the
        // completion channel accounts for all of them.
        let mut served = 0u64;
        let mut replans = 0u64;
        for done in completions.iter() {
            served += done.coalesced as u64;
            replans += 1;
        }
        assert_eq!(served, accepted);
        assert_eq!(replans, stats.replans);
    }

    #[test]
    fn bursts_coalesce_into_fewer_replans() {
        let (service, completions) = PlanService::start(
            ClusterSpec::homogeneous(1, 8),
            ServiceConfig {
                workers: 1,
                queue_depth: 64,
                ..ServiceConfig::default()
            },
        );
        // A burst of 12 events for one tenant: the worker is busy planning
        // the first, so the rest sit queued and fold into (far) fewer
        // re-plans. The final plan must reflect the *last* submitted graph.
        for batch in (1..=12u32).map(|i| 8 * i) {
            service.submit(3, graph(batch)).unwrap();
        }
        let stats = service.shutdown();
        let done: Vec<Completion> = completions.iter().collect();
        let served: usize = done.iter().map(|c| c.coalesced).sum();
        assert_eq!(served, 12);
        assert!(done.len() < 12, "burst must coalesce");
        assert!(stats.coalescing_ratio() > 1.0);
        let last = done.last().unwrap().result.as_ref().unwrap();
        let direct = SpindleSession::new(ClusterSpec::homogeneous(1, 8))
            .plan(&graph(96))
            .unwrap();
        assert_eq!(last.plan.waves(), direct.waves(), "latest graph wins");
    }

    #[test]
    fn coalescing_ratio_is_defined_before_any_replan() {
        // Regression: replans == 0 used to divide by zero; the ratio must be
        // the neutral 1.0 (one event per re-plan) and stay finite.
        let fresh = ServiceStats::default();
        assert_eq!(fresh.replans, 0);
        let ratio = fresh.coalescing_ratio();
        assert!(ratio.is_finite(), "ratio must never be NaN/inf: {ratio}");
        assert_eq!(ratio, 1.0);
        // Even with accepted-but-unserved submissions the ratio stays 1.0
        // until a re-plan actually executes.
        let queued = ServiceStats {
            submitted: 7,
            ..ServiceStats::default()
        };
        assert_eq!(queued.coalescing_ratio(), 1.0);
        // And once re-plans run, it is the exact events-per-replan quotient.
        let served = ServiceStats {
            submitted: 12,
            replans: 4,
            ..ServiceStats::default()
        };
        assert_eq!(served.coalescing_ratio(), 3.0);
        // A live service that has accepted nothing reports the same neutral
        // figure through the snapshot path.
        let (service, _completions) = PlanService::start(
            ClusterSpec::homogeneous(1, 4),
            ServiceConfig {
                workers: 1,
                queue_depth: 4,
                ..ServiceConfig::default()
            },
        );
        assert_eq!(service.stats().coalescing_ratio(), 1.0);
    }

    #[test]
    fn retry_hint_is_floored_at_100_microseconds() {
        let (service, _completions) = PlanService::start(
            ClusterSpec::homogeneous(1, 4),
            ServiceConfig {
                workers: 1,
                queue_depth: 4,
                ..ServiceConfig::default()
            },
        );
        // Fresh service: no re-plans yet, the hint is exactly the floor.
        assert_eq!(service.retry_hint(), MIN_RETRY_HINT);
        assert_eq!(MIN_RETRY_HINT, Duration::from_micros(100));

        // Regression: when the observed mean plan time sits *below* the
        // floor (here 5µs/replan), the hint must not follow it down — a
        // sub-100µs backoff would have callers hammering a full queue.
        service.counters.replans.store(10, Ordering::Relaxed);
        service.counters.plan_nanos.store(50_000, Ordering::Relaxed);
        assert_eq!(service.retry_hint(), MIN_RETRY_HINT);

        // Above the floor the hint tracks the observed mean exactly.
        service.counters.replans.store(4, Ordering::Relaxed);
        service
            .counters
            .plan_nanos
            .store(4_000_000, Ordering::Relaxed);
        assert_eq!(service.retry_hint(), Duration::from_millis(1));
    }

    fn drain_ok(completions: &Receiver<Completion>, expect: usize) -> Vec<Completion> {
        (0..expect)
            .map(|_| {
                completions
                    .recv_timeout(Duration::from_secs(30))
                    .expect("completion")
            })
            .collect()
    }

    fn uses_device(outcome: &ReplanOutcome, device: u32) -> bool {
        outcome.plan.waves().iter().any(|w| {
            w.entries.iter().any(|e| {
                e.placement
                    .as_ref()
                    .is_some_and(|g| g.contains(spindle_cluster::DeviceId(device)))
            })
        })
    }

    #[test]
    fn topology_change_replans_every_tenant_on_the_survivors() {
        let (service, completions) = PlanService::start(
            ClusterSpec::homogeneous(1, 8),
            ServiceConfig {
                workers: 1,
                queue_depth: 16,
                ..ServiceConfig::default()
            },
        );
        service.submit(0, graph(16)).unwrap();
        service.submit(1, graph(32)).unwrap();
        for done in drain_ok(&completions, 2) {
            assert!(!done.topology_change);
            done.result.expect("task-mix plan succeeds");
        }

        // Device 7 dies: both tenants re-plan onto the 7 survivors.
        let notified = service
            .submit_topology(&[spindle_cluster::DeviceId(7)], &[])
            .unwrap();
        assert_eq!(notified, 1);
        let mut tenants_seen = Vec::new();
        for done in drain_ok(&completions, 2) {
            assert!(done.topology_change);
            assert_eq!(done.coalesced, 1);
            let outcome = done.result.expect("topology re-plan succeeds");
            outcome.plan.validate().unwrap();
            assert!(
                !uses_device(&outcome, 7),
                "tenant {} placed work on the dead device",
                done.tenant
            );
            assert_eq!(outcome.devices_lost, 1);
            tenants_seen.push(done.tenant);
        }
        tenants_seen.sort_unstable();
        assert_eq!(tenants_seen, vec![0, 1]);

        // A tenant arriving after the change plans on the survivors too.
        service.submit(2, graph(8)).unwrap();
        let done = drain_ok(&completions, 1).pop().unwrap();
        let outcome = done.result.expect("new tenant plans");
        assert!(!uses_device(&outcome, 7), "new tenant saw the old topology");

        // The device comes back: every tenant re-plans at full capacity and
        // may use device 7 again.
        service
            .submit_topology(&[], &[spindle_cluster::DeviceId(7)])
            .unwrap();
        for done in drain_ok(&completions, 3) {
            assert!(done.topology_change);
            let outcome = done.result.expect("restore re-plan succeeds");
            assert_eq!(outcome.devices_lost, 0);
            outcome.plan.validate().unwrap();
        }

        let stats = service.shutdown();
        assert_eq!(stats.topology_replans, 5, "2 on loss + 3 on restore");
        assert_eq!(stats.errors, 0);
        // Topology re-plans stay out of the coalescing denominator.
        assert_eq!(stats.replans, 3);
    }

    #[test]
    fn removing_every_device_is_a_tenant_error_not_a_worker_death() {
        let (service, completions) = PlanService::start(
            ClusterSpec::homogeneous(1, 4),
            ServiceConfig {
                workers: 1,
                queue_depth: 16,
                ..ServiceConfig::default()
            },
        );
        service.submit(0, graph(8)).unwrap();
        drain_ok(&completions, 1)
            .pop()
            .unwrap()
            .result
            .expect("initial plan");
        // Removing all four devices cannot be applied; the tenant gets an
        // error completion and the worker lives on.
        let all: Vec<spindle_cluster::DeviceId> = (0..4).map(spindle_cluster::DeviceId).collect();
        service.submit_topology(&all, &[]).unwrap();
        let done = drain_ok(&completions, 1).pop().unwrap();
        assert!(done.topology_change);
        assert!(done.result.is_err(), "empty cluster must be rejected");
        // The worker is still serving: the same tenant re-plans fine.
        service.submit(0, graph(16)).unwrap();
        let done = drain_ok(&completions, 1).pop().unwrap();
        done.result
            .expect("worker survived the bad topology change");
        let stats = service.shutdown();
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn panic_payloads_map_to_per_tenant_plan_errors() {
        for (payload, needle) in [
            (
                std::panic::catch_unwind(|| panic!("boom at wave 3")).unwrap_err(),
                "boom at wave 3",
            ),
            (
                std::panic::catch_unwind(|| panic!("{}", String::from("formatted"))).unwrap_err(),
                "formatted",
            ),
            (
                std::panic::catch_unwind(|| std::panic::panic_any(42_u32)).unwrap_err(),
                "non-string panic payload",
            ),
        ] {
            match panic_error(payload.as_ref()) {
                PlanError::Panicked { message } => assert!(
                    message.contains(needle),
                    "payload mapped to {message:?}, wanted {needle:?}"
                ),
                other => panic!("wrong error: {other:?}"),
            }
        }
    }

    #[test]
    fn dropping_the_service_joins_workers() {
        let (service, completions) = PlanService::start(
            ClusterSpec::homogeneous(1, 4),
            ServiceConfig {
                workers: 1,
                queue_depth: 4,
                ..ServiceConfig::default()
            },
        );
        service.submit(9, graph(8)).unwrap();
        drop(service);
        // The worker drained the event before exiting.
        let done: Vec<Completion> = completions.iter().collect();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tenant, 9);
    }

    #[test]
    fn rendezvous_moves_are_minimal_and_deterministic() {
        // Growing the key set must never move a tenant between two surviving
        // keys — the defining property of rendezvous hashing.
        let old_keys: Vec<u64> = (0..4).collect();
        let new_keys: Vec<u64> = (0..6).collect();
        let mut moved = 0;
        for tenant in 0..1000u64 {
            let before = owner_key(&old_keys, tenant);
            let after = owner_key(&new_keys, tenant);
            if before != after {
                assert!(after >= 4, "tenant {tenant} moved between survivors");
                moved += 1;
            }
            // Determinism: the owner is a pure function of keys and tenant.
            assert_eq!(after, owner_key(&new_keys, tenant));
        }
        // Expected fraction ~ 2/6 of tenants; allow generous slack.
        assert!((150..=550).contains(&moved), "moved {moved} of 1000");

        // Shrinking only moves the removed keys' tenants.
        for tenant in 0..1000u64 {
            let before = owner_key(&new_keys, tenant);
            let after = owner_key(&old_keys, tenant);
            if before < 4 {
                assert_eq!(before, after, "tenant {tenant} moved off a survivor");
            }
        }
    }

    #[test]
    fn throttled_submissions_are_rejected_without_queueing() {
        use crate::TenantPolicy;
        let mut fairness = FairnessConfig::default();
        fairness.overrides.insert(
            5,
            TenantPolicy {
                rate: 0.5,
                burst: 2.0,
                ..TenantPolicy::unlimited()
            },
        );
        let (service, completions) = PlanService::start(
            ClusterSpec::homogeneous(1, 8),
            ServiceConfig {
                workers: 1,
                queue_depth: 16,
                fairness,
                ..ServiceConfig::default()
            },
        );
        // The burst admits two submissions; the third is throttled with a
        // rate-derived hint, and an unlimited tenant is unaffected.
        service.submit(5, graph(8)).unwrap();
        service.submit(5, graph(16)).unwrap();
        match service.submit(5, graph(24)) {
            Err(SubmitError::Throttled { retry_hint }) => {
                assert!(retry_hint >= Duration::from_secs(1), "hint {retry_hint:?}");
            }
            other => panic!("expected throttle, got {other:?}"),
        }
        service.submit(6, graph(8)).unwrap();
        let stats = service.shutdown();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.throttled, 1);
        assert_eq!(stats.rejected, 0);
        let served: usize = completions.iter().map(|c| c.coalesced).sum();
        assert_eq!(served, 3, "throttled events never reach a worker");
    }

    #[test]
    fn resize_migrates_sessions_and_loses_nothing() {
        let (service, completions) = PlanService::start(
            ClusterSpec::homogeneous(1, 8),
            ServiceConfig {
                workers: 2,
                queue_depth: 32,
                ..ServiceConfig::default()
            },
        );
        for tenant in 0..6u64 {
            service
                .submit(tenant, graph(8 + tenant as u32 * 8))
                .unwrap();
        }
        // Grow while the first plans are still in flight, then shrink back.
        let moved_up = service.resize(4);
        assert_eq!(service.num_workers(), 4);
        for tenant in 0..6u64 {
            service
                .submit(tenant, graph(16 + tenant as u32 * 8))
                .unwrap();
        }
        let moved_down = service.resize(1);
        assert_eq!(service.num_workers(), 1);
        for tenant in 0..6u64 {
            service
                .submit(tenant, graph(24 + tenant as u32 * 8))
                .unwrap();
        }
        let stats = service.shutdown();
        assert_eq!(stats.submitted, 18);
        assert_eq!(stats.errors, 0);
        let mut served = 0usize;
        for done in completions.iter() {
            served += done.coalesced;
            done.result.expect("every re-plan succeeds across resizes");
        }
        assert_eq!(served, 18, "no accepted submission may be lost");
        // Shrinking to one worker moves every tenant that lived elsewhere;
        // growing moves only re-owned tenants. Both are bounded by the
        // tenant count.
        assert!(moved_up <= 6);
        assert!(moved_down <= 6);
    }

    #[test]
    fn resize_to_same_size_is_a_no_op() {
        let (service, _completions) = PlanService::start(
            ClusterSpec::homogeneous(1, 4),
            ServiceConfig {
                workers: 2,
                queue_depth: 4,
                ..ServiceConfig::default()
            },
        );
        assert_eq!(service.resize(2), 0);
        assert_eq!(service.num_workers(), 2);
    }
}
