//! Arrival-process scenarios: dynamic workloads positioned on a wall-clock
//! timeline.
//!
//! [`DynamicWorkload`](crate::DynamicWorkload) describes *what* changes
//! (phases with iteration budgets); an [`ArrivalSchedule`] additionally says
//! *when* — each phase arrives at a simulated timestamp, which is the shape
//! the runtime's online re-planning loop consumes. Schedules come from two
//! sources: deterministic conversion of a `DynamicWorkload` (phase boundaries
//! at cumulative iteration counts), and a seeded xorshift arrival process
//! that grows and shrinks the task mix at exponential-ish inter-arrival
//! times — the stress scenario for mid-run task churn.

use spindle_graph::{ComputationGraph, GraphError, XorShift64Star};

use crate::{multitask_clip, DynamicWorkload};

/// One task-mix change: at `at_s` (simulated seconds since the start of the
/// run) the active task set becomes `graph`.
#[derive(Debug, Clone)]
pub struct PhaseArrival {
    /// Arrival timestamp, seconds since run start.
    pub at_s: f64,
    /// Human-readable description of the new task set.
    pub label: String,
    /// The computation graph of the new active task set.
    pub graph: ComputationGraph,
}

/// A timeline of task-mix changes over one training run.
#[derive(Debug, Clone)]
pub struct ArrivalSchedule {
    name: String,
    horizon_s: f64,
    arrivals: Vec<PhaseArrival>,
}

impl ArrivalSchedule {
    /// Creates a schedule from its arrivals (sorted by timestamp) running
    /// until `horizon_s`.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` is empty or `horizon_s` does not exceed the last
    /// arrival.
    #[must_use]
    pub fn new(name: impl Into<String>, mut arrivals: Vec<PhaseArrival>, horizon_s: f64) -> Self {
        assert!(!arrivals.is_empty(), "schedule needs at least one phase");
        arrivals.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        let last = arrivals.last().map_or(0.0, |a| a.at_s);
        assert!(
            horizon_s > last,
            "horizon {horizon_s} must lie beyond the last arrival {last}"
        );
        Self {
            name: name.into(),
            horizon_s,
            arrivals,
        }
    }

    /// Positions a [`DynamicWorkload`]'s phases on a timeline, assuming each
    /// iteration takes `iteration_s` seconds: phase `k` arrives once the
    /// preceding phases' iteration budgets have elapsed.
    #[must_use]
    pub fn from_workload(workload: &DynamicWorkload, iteration_s: f64) -> Self {
        let mut at = 0.0;
        let mut arrivals = Vec::with_capacity(workload.phases().len());
        for phase in workload.phases() {
            arrivals.push(PhaseArrival {
                at_s: at,
                label: phase.label.clone(),
                graph: phase.graph.clone(),
            });
            at += phase.iterations as f64 * iteration_s;
        }
        Self::new(workload.name(), arrivals, at.max(iteration_s))
    }

    /// A seeded random arrival process over the Multitask-CLIP family: the
    /// task count performs a bounded walk (tasks join and finish), with
    /// exponential inter-arrival times of mean `mean_gap_s`. The same seed
    /// always produces the same schedule.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if a phase graph fails to build.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is zero or `mean_gap_s` is not positive.
    pub fn multitask_clip_arrivals(
        seed: u64,
        phases: usize,
        mean_gap_s: f64,
    ) -> Result<Self, GraphError> {
        assert!(phases > 0, "schedule needs at least one phase");
        assert!(mean_gap_s > 0.0, "mean inter-arrival gap must be positive");
        let mut rng = XorShift64Star::new(seed);
        let mut tasks: i64 = 4;
        let mut at = 0.0;
        let mut arrivals = Vec::with_capacity(phases);
        for i in 0..phases {
            if i > 0 {
                // Bounded walk over the preset's supported task counts.
                let step = match rng.next_u64() % 4 {
                    0 => -2,
                    1 => -1,
                    2 => 1,
                    _ => 2,
                };
                tasks = (tasks + step).clamp(2, 10);
                // Exponential inter-arrival via inverse-CDF sampling.
                let u = rng.next_f64();
                at += mean_gap_s * -(1.0 - u).max(f64::MIN_POSITIVE).ln();
            }
            arrivals.push(PhaseArrival {
                at_s: at,
                label: format!("{tasks} tasks"),
                graph: multitask_clip(tasks as usize)?,
            });
        }
        let horizon = at + mean_gap_s;
        Ok(Self::new(
            format!("Multitask-CLIP arrivals (seed {seed})"),
            arrivals,
            horizon,
        ))
    }

    /// Schedule name (for experiment output).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The arrivals in timeline order.
    #[must_use]
    pub fn arrivals(&self) -> &[PhaseArrival] {
        &self.arrivals
    }

    /// End of the run, seconds since run start.
    #[must_use]
    pub fn horizon_s(&self) -> f64 {
        self.horizon_s
    }

    /// Number of mid-run task-mix changes (arrivals after the first), each of
    /// which requires an online re-plan.
    #[must_use]
    pub fn num_replans(&self) -> usize {
        self.arrivals.len().saturating_sub(1)
    }

    /// The active window of phase `index`: from its arrival until the next
    /// arrival (or the horizon for the last phase), seconds.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn phase_window_s(&self, index: usize) -> f64 {
        let start = self.arrivals[index].at_s;
        let end = self
            .arrivals
            .get(index + 1)
            .map_or(self.horizon_s, |next| next.at_s);
        (end - start).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_workload_places_phases_at_cumulative_boundaries() {
        let w = DynamicWorkload::multitask_clip_schedule().unwrap();
        let s = ArrivalSchedule::from_workload(&w, 0.01);
        assert_eq!(s.arrivals().len(), 4);
        assert_eq!(s.num_replans(), 3);
        assert!((s.arrivals()[0].at_s).abs() < 1e-12);
        assert!((s.arrivals()[1].at_s - 500.0).abs() < 1e-9); // 50k iters x 10ms
        assert!((s.horizon_s() - 2000.0).abs() < 1e-9);
        let windows: f64 = (0..4).map(|i| s.phase_window_s(i)).sum();
        assert!((windows - s.horizon_s()).abs() < 1e-9);
    }

    #[test]
    fn seeded_arrival_process_is_reproducible_and_varied() {
        let a = ArrivalSchedule::multitask_clip_arrivals(7, 6, 100.0).unwrap();
        let b = ArrivalSchedule::multitask_clip_arrivals(7, 6, 100.0).unwrap();
        assert_eq!(a.arrivals().len(), 6);
        for (x, y) in a.arrivals().iter().zip(b.arrivals()) {
            assert!((x.at_s - y.at_s).abs() < 1e-12);
            assert_eq!(x.label, y.label);
        }
        let c = ArrivalSchedule::multitask_clip_arrivals(8, 6, 100.0).unwrap();
        let same_times = a
            .arrivals()
            .iter()
            .zip(c.arrivals())
            .all(|(x, y)| (x.at_s - y.at_s).abs() < 1e-12);
        assert!(!same_times, "different seeds must differ");
        // Timestamps strictly ordered, horizon beyond the last arrival.
        assert!(a.arrivals().windows(2).all(|w| w[0].at_s < w[1].at_s));
        assert!(a.horizon_s() > a.arrivals().last().unwrap().at_s);
        // The walk stays within the preset's supported range.
        for arr in a.arrivals() {
            let tasks = arr.graph.tasks().len();
            assert!((2..=10).contains(&tasks));
        }
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_schedule_panics() {
        let _ = ArrivalSchedule::new("empty", Vec::new(), 1.0);
    }
}
