//! Arrival-process scenarios: dynamic workloads positioned on a wall-clock
//! timeline.
//!
//! [`DynamicWorkload`](crate::DynamicWorkload) describes *what* changes
//! (phases with iteration budgets); an [`ArrivalSchedule`] additionally says
//! *when* — each phase arrives at a simulated timestamp, which is the shape
//! the runtime's online re-planning loop consumes. Schedules come from two
//! sources: deterministic conversion of a `DynamicWorkload` (phase boundaries
//! at cumulative iteration counts), and a seeded xorshift arrival process
//! that grows and shrinks the task mix at exponential-ish inter-arrival
//! times — the stress scenario for mid-run task churn.

use spindle_graph::{ComputationGraph, GraphError, XorShift64Star};

use crate::{multitask_clip, DynamicWorkload};

/// One task-mix change: at `at_s` (simulated seconds since the start of the
/// run) the active task set becomes `graph`.
#[derive(Debug, Clone)]
pub struct PhaseArrival {
    /// Arrival timestamp, seconds since run start.
    pub at_s: f64,
    /// Human-readable description of the new task set.
    pub label: String,
    /// The computation graph of the new active task set.
    pub graph: ComputationGraph,
}

/// What a device-churn event does to the cluster's device pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceChurnKind {
    /// The devices leave the pool (spot reclamation, GPU failure, the start
    /// of a preemption window).
    Remove,
    /// Previously removed devices rejoin the pool (capacity restored, the
    /// end of a preemption window).
    Restore,
}

/// One device-topology change at a simulated timestamp: a node or GPU range
/// leaving or rejoining the cluster. Device ids are global ids into the
/// cluster the schedule is run against (the workloads crate does not depend
/// on the cluster model, mirroring the scenario fuzzer's convention).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceChurnEvent {
    /// Event timestamp, seconds since run start.
    pub at_s: f64,
    /// Whether the devices leave or rejoin.
    pub kind: DeviceChurnKind,
    /// The affected global device ids.
    pub devices: Vec<u32>,
    /// Human-readable description (for run reports).
    pub label: String,
}

/// One entry of the merged run timeline: a task-mix change or a
/// device-topology change (see [`ArrivalSchedule::timeline`]).
#[derive(Debug, Clone, Copy)]
pub enum ScheduleEvent<'a> {
    /// The active task set changes.
    Phase(&'a PhaseArrival),
    /// The device pool changes.
    Churn(&'a DeviceChurnEvent),
}

impl ScheduleEvent<'_> {
    /// The event's timestamp, seconds since run start.
    #[must_use]
    pub fn at_s(&self) -> f64 {
        match self {
            Self::Phase(p) => p.at_s,
            Self::Churn(c) => c.at_s,
        }
    }
}

/// A timeline of task-mix changes — and, optionally, device-churn events —
/// over one training run.
#[derive(Debug, Clone)]
pub struct ArrivalSchedule {
    name: String,
    horizon_s: f64,
    arrivals: Vec<PhaseArrival>,
    device_churn: Vec<DeviceChurnEvent>,
}

impl ArrivalSchedule {
    /// Creates a schedule from its arrivals (sorted by timestamp) running
    /// until `horizon_s`.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` is empty or `horizon_s` does not exceed the last
    /// arrival.
    #[must_use]
    pub fn new(name: impl Into<String>, mut arrivals: Vec<PhaseArrival>, horizon_s: f64) -> Self {
        assert!(!arrivals.is_empty(), "schedule needs at least one phase");
        arrivals.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        let last = arrivals.last().map_or(0.0, |a| a.at_s);
        assert!(
            horizon_s > last,
            "horizon {horizon_s} must lie beyond the last arrival {last}"
        );
        Self {
            name: name.into(),
            horizon_s,
            arrivals,
            device_churn: Vec::new(),
        }
    }

    /// Positions a [`DynamicWorkload`]'s phases on a timeline, assuming each
    /// iteration takes `iteration_s` seconds: phase `k` arrives once the
    /// preceding phases' iteration budgets have elapsed.
    #[must_use]
    pub fn from_workload(workload: &DynamicWorkload, iteration_s: f64) -> Self {
        let mut at = 0.0;
        let mut arrivals = Vec::with_capacity(workload.phases().len());
        for phase in workload.phases() {
            arrivals.push(PhaseArrival {
                at_s: at,
                label: phase.label.clone(),
                graph: phase.graph.clone(),
            });
            at += phase.iterations as f64 * iteration_s;
        }
        Self::new(workload.name(), arrivals, at.max(iteration_s))
    }

    /// A seeded random arrival process over the Multitask-CLIP family: the
    /// task count performs a bounded walk (tasks join and finish), with
    /// exponential inter-arrival times of mean `mean_gap_s`. The same seed
    /// always produces the same schedule.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if a phase graph fails to build.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is zero or `mean_gap_s` is not positive.
    pub fn multitask_clip_arrivals(
        seed: u64,
        phases: usize,
        mean_gap_s: f64,
    ) -> Result<Self, GraphError> {
        assert!(phases > 0, "schedule needs at least one phase");
        assert!(mean_gap_s > 0.0, "mean inter-arrival gap must be positive");
        let mut rng = XorShift64Star::new(seed);
        let mut tasks: i64 = 4;
        let mut at = 0.0;
        let mut arrivals = Vec::with_capacity(phases);
        for i in 0..phases {
            if i > 0 {
                // Bounded walk over the preset's supported task counts.
                let step = match rng.next_u64() % 4 {
                    0 => -2,
                    1 => -1,
                    2 => 1,
                    _ => 2,
                };
                tasks = (tasks + step).clamp(2, 10);
                // Exponential inter-arrival via inverse-CDF sampling.
                let u = rng.next_f64();
                at += mean_gap_s * -(1.0 - u).max(f64::MIN_POSITIVE).ln();
            }
            arrivals.push(PhaseArrival {
                at_s: at,
                label: format!("{tasks} tasks"),
                graph: multitask_clip(tasks as usize)?,
            });
        }
        let horizon = at + mean_gap_s;
        Ok(Self::new(
            format!("Multitask-CLIP arrivals (seed {seed})"),
            arrivals,
            horizon,
        ))
    }

    /// Attaches explicit device-churn events to the schedule (sorted by
    /// timestamp).
    ///
    /// # Panics
    ///
    /// Panics if an event lies outside `[0, horizon)` or names no device.
    #[must_use]
    pub fn with_device_churn(mut self, mut events: Vec<DeviceChurnEvent>) -> Self {
        for event in &events {
            assert!(
                event.at_s >= 0.0 && event.at_s < self.horizon_s,
                "churn event at {} outside the run horizon {}",
                event.at_s,
                self.horizon_s
            );
            assert!(!event.devices.is_empty(), "churn event names no device");
        }
        events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        self.device_churn = events;
        self
    }

    /// Draws a seeded sequence of device-churn events over the schedule's
    /// horizon for a cluster of `num_devices` devices: GPU-range and
    /// node-scale removals, explicit restores, and preemption windows
    /// (a removal whose devices rejoin after a bounded window). At most half
    /// the cluster is ever down at once, so the run always keeps capacity.
    /// The same seed always produces the same events.
    ///
    /// # Panics
    ///
    /// Panics if `num_devices` is zero.
    #[must_use]
    pub fn with_seeded_device_churn(self, seed: u64, num_devices: u32, events: usize) -> Self {
        assert!(num_devices > 0, "churn needs a device pool");
        let mut rng = XorShift64Star::new(seed ^ 0x9e37_79b9_7f4a_7c15);
        let horizon = self.horizon_s;
        let max_down = (num_devices / 2).max(1) as usize;
        // Draw the event instants first and walk them in time order, so the
        // down-set accounting below matches exactly what a replay sees.
        let mut times: Vec<f64> = (0..events)
            .map(|_| horizon * (0.05 + 0.80 * rng.next_f64()))
            .collect();
        times.sort_by(f64::total_cmp);
        let mut down: Vec<u32> = Vec::new();
        let mut pending_restores: Vec<(f64, Vec<u32>)> = Vec::new();
        let mut out: Vec<DeviceChurnEvent> = Vec::new();
        let flush_restores = |cutoff: f64,
                              down: &mut Vec<u32>,
                              pending: &mut Vec<(f64, Vec<u32>)>,
                              out: &mut Vec<DeviceChurnEvent>| {
            pending.sort_by(|a, b| a.0.total_cmp(&b.0));
            while pending.first().is_some_and(|(t, _)| *t <= cutoff) {
                let (t, devices) = pending.remove(0);
                down.retain(|d| !devices.contains(d));
                out.push(DeviceChurnEvent {
                    at_s: t,
                    kind: DeviceChurnKind::Restore,
                    label: format!("preemption window over: {} devices back", devices.len()),
                    devices,
                });
            }
        };
        for at_s in times {
            flush_restores(at_s, &mut down, &mut pending_restores, &mut out);
            let draw = rng.next_u64() % 4;
            if draw == 3 && !down.is_empty() {
                // Explicit restore of part of the down set.
                let k = 1 + rng.next_u64() as usize % down.len();
                let devices: Vec<u32> = down.drain(..k).collect();
                out.push(DeviceChurnEvent {
                    at_s,
                    kind: DeviceChurnKind::Restore,
                    label: format!("{} devices restored", devices.len()),
                    devices,
                });
                continue;
            }
            let budget = max_down.saturating_sub(down.len());
            if budget == 0 {
                continue;
            }
            // Removal span: occasionally node-scale, usually a small GPU
            // range.
            let span = if draw == 0 {
                (num_devices / 4).max(1)
            } else {
                (num_devices / 8).max(1)
            };
            let len = 1 + rng.next_u64() % u64::from(span);
            let start = rng.next_u64() % u64::from(num_devices);
            let devices: Vec<u32> = (0..len)
                .map(|k| ((start + k) % u64::from(num_devices)) as u32)
                .filter(|d| !down.contains(d))
                .take(budget)
                .collect();
            if devices.is_empty() {
                continue;
            }
            down.extend(&devices);
            let preempt = draw == 2;
            out.push(DeviceChurnEvent {
                at_s,
                kind: DeviceChurnKind::Remove,
                label: if preempt {
                    format!("{} devices preempted", devices.len())
                } else {
                    format!("{} devices lost", devices.len())
                },
                devices: devices.clone(),
            });
            if preempt {
                let window = horizon * (0.04 + 0.08 * rng.next_f64());
                pending_restores.push(((at_s + window).min(horizon * 0.97), devices));
            }
        }
        flush_restores(horizon, &mut down, &mut pending_restores, &mut out);
        out.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        Self {
            device_churn: out,
            ..self
        }
    }

    /// The device-churn events in timeline order (empty unless attached).
    #[must_use]
    pub fn device_churn(&self) -> &[DeviceChurnEvent] {
        &self.device_churn
    }

    /// Number of device-topology changes in the schedule.
    #[must_use]
    pub fn num_topology_changes(&self) -> usize {
        self.device_churn.len()
    }

    /// The merged run timeline: task arrivals and device-churn events in one
    /// time-ordered sequence (arrivals first on equal timestamps, so a phase
    /// plans against the pool the churn event is about to change).
    #[must_use]
    pub fn timeline(&self) -> Vec<ScheduleEvent<'_>> {
        let mut events: Vec<ScheduleEvent<'_>> = self
            .arrivals
            .iter()
            .map(ScheduleEvent::Phase)
            .chain(self.device_churn.iter().map(ScheduleEvent::Churn))
            .collect();
        events.sort_by(|a, b| {
            a.at_s().total_cmp(&b.at_s()).then_with(|| {
                let rank = |e: &ScheduleEvent<'_>| match e {
                    ScheduleEvent::Phase(_) => 0,
                    ScheduleEvent::Churn(_) => 1,
                };
                rank(a).cmp(&rank(b))
            })
        });
        events
    }

    /// Schedule name (for experiment output).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The arrivals in timeline order.
    #[must_use]
    pub fn arrivals(&self) -> &[PhaseArrival] {
        &self.arrivals
    }

    /// End of the run, seconds since run start.
    #[must_use]
    pub fn horizon_s(&self) -> f64 {
        self.horizon_s
    }

    /// Number of mid-run task-mix changes (arrivals after the first), each of
    /// which requires an online re-plan.
    #[must_use]
    pub fn num_replans(&self) -> usize {
        self.arrivals.len().saturating_sub(1)
    }

    /// The active window of phase `index`: from its arrival until the next
    /// arrival (or the horizon for the last phase), seconds.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn phase_window_s(&self, index: usize) -> f64 {
        let start = self.arrivals[index].at_s;
        let end = self
            .arrivals
            .get(index + 1)
            .map_or(self.horizon_s, |next| next.at_s);
        (end - start).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_workload_places_phases_at_cumulative_boundaries() {
        let w = DynamicWorkload::multitask_clip_schedule().unwrap();
        let s = ArrivalSchedule::from_workload(&w, 0.01);
        assert_eq!(s.arrivals().len(), 4);
        assert_eq!(s.num_replans(), 3);
        assert!((s.arrivals()[0].at_s).abs() < 1e-12);
        assert!((s.arrivals()[1].at_s - 500.0).abs() < 1e-9); // 50k iters x 10ms
        assert!((s.horizon_s() - 2000.0).abs() < 1e-9);
        let windows: f64 = (0..4).map(|i| s.phase_window_s(i)).sum();
        assert!((windows - s.horizon_s()).abs() < 1e-9);
    }

    #[test]
    fn seeded_arrival_process_is_reproducible_and_varied() {
        let a = ArrivalSchedule::multitask_clip_arrivals(7, 6, 100.0).unwrap();
        let b = ArrivalSchedule::multitask_clip_arrivals(7, 6, 100.0).unwrap();
        assert_eq!(a.arrivals().len(), 6);
        for (x, y) in a.arrivals().iter().zip(b.arrivals()) {
            assert!((x.at_s - y.at_s).abs() < 1e-12);
            assert_eq!(x.label, y.label);
        }
        let c = ArrivalSchedule::multitask_clip_arrivals(8, 6, 100.0).unwrap();
        let same_times = a
            .arrivals()
            .iter()
            .zip(c.arrivals())
            .all(|(x, y)| (x.at_s - y.at_s).abs() < 1e-12);
        assert!(!same_times, "different seeds must differ");
        // Timestamps strictly ordered, horizon beyond the last arrival.
        assert!(a.arrivals().windows(2).all(|w| w[0].at_s < w[1].at_s));
        assert!(a.horizon_s() > a.arrivals().last().unwrap().at_s);
        // The walk stays within the preset's supported range.
        for arr in a.arrivals() {
            let tasks = arr.graph.tasks().len();
            assert!((2..=10).contains(&tasks));
        }
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_schedule_panics() {
        let _ = ArrivalSchedule::new("empty", Vec::new(), 1.0);
    }

    #[test]
    fn seeded_device_churn_is_reproducible_and_bounded() {
        let num_devices = 16;
        let base = || ArrivalSchedule::multitask_clip_arrivals(7, 6, 40.0).unwrap();
        let a = base().with_seeded_device_churn(11, num_devices, 24);
        let b = base().with_seeded_device_churn(11, num_devices, 24);
        assert_eq!(a.device_churn(), b.device_churn());
        assert!(a.num_topology_changes() > 0);
        let c = base().with_seeded_device_churn(12, num_devices, 24);
        assert_ne!(a.device_churn(), c.device_churn(), "seeds must differ");

        // Replay the event stream: the down set never exceeds half the
        // cluster, ids are in range, timestamps within the horizon and
        // non-decreasing, restores only name down devices.
        let mut down: Vec<u32> = Vec::new();
        let mut prev = 0.0_f64;
        for event in a.device_churn() {
            assert!(event.at_s >= prev && event.at_s <= a.horizon_s());
            prev = event.at_s;
            assert!(!event.devices.is_empty());
            assert!(event.devices.iter().all(|d| *d < num_devices));
            match event.kind {
                DeviceChurnKind::Remove => {
                    for d in &event.devices {
                        assert!(!down.contains(d), "device {d} removed twice");
                        down.push(*d);
                    }
                    assert!(down.len() <= (num_devices / 2) as usize);
                }
                DeviceChurnKind::Restore => {
                    for d in &event.devices {
                        assert!(down.contains(d), "restore of a live device {d}");
                    }
                    down.retain(|d| !event.devices.contains(d));
                }
            }
        }
    }

    #[test]
    fn timeline_merges_arrivals_and_churn_in_time_order() {
        let s = ArrivalSchedule::multitask_clip_arrivals(3, 5, 30.0)
            .unwrap()
            .with_seeded_device_churn(9, 8, 12);
        let timeline = s.timeline();
        assert_eq!(
            timeline.len(),
            s.arrivals().len() + s.num_topology_changes()
        );
        assert!(timeline.windows(2).all(|w| w[0].at_s() <= w[1].at_s()));
        let phases = timeline
            .iter()
            .filter(|e| matches!(e, ScheduleEvent::Phase(_)))
            .count();
        assert_eq!(phases, s.arrivals().len());
    }

    #[test]
    #[should_panic(expected = "outside the run horizon")]
    fn explicit_churn_outside_horizon_panics() {
        let s = ArrivalSchedule::multitask_clip_arrivals(3, 4, 30.0).unwrap();
        let horizon = s.horizon_s();
        let _ = s.with_device_churn(vec![DeviceChurnEvent {
            at_s: horizon + 1.0,
            kind: DeviceChurnKind::Remove,
            devices: vec![0],
            label: "late".into(),
        }]);
    }
}
