//! Dynamic multi-task workloads (Appendix D): the active task set changes as
//! training progresses — tasks with little data finish early, new tasks join.

use spindle_graph::{ComputationGraph, GraphError};

use crate::{multitask_clip, ofasys, WorkloadPreset};

/// One phase of a dynamic workload: a fixed task set trained for a number of
/// iterations.
#[derive(Debug, Clone)]
pub struct DynamicPhase {
    /// Human-readable description of the phase's task set.
    pub label: String,
    /// Number of training iterations in the phase.
    pub iterations: u64,
    /// The computation graph of the active task set.
    pub graph: ComputationGraph,
}

/// A schedule of task-set changes over a training run.
#[derive(Debug, Clone)]
pub struct DynamicWorkload {
    name: String,
    phases: Vec<DynamicPhase>,
}

impl DynamicWorkload {
    /// Creates a dynamic workload from its phases.
    #[must_use]
    pub fn new(name: impl Into<String>, phases: Vec<DynamicPhase>) -> Self {
        Self {
            name: name.into(),
            phases,
        }
    }

    /// The Multitask-CLIP dynamic schedule used in Fig. 13 (≈200k iterations,
    /// task set growing from 4 to 10 tasks and then shrinking as early tasks
    /// exhaust their data).
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if any phase graph fails to build.
    pub fn multitask_clip_schedule() -> Result<Self, GraphError> {
        Ok(Self::new(
            "Multitask-CLIP",
            vec![
                DynamicPhase {
                    label: "4 tasks".to_string(),
                    iterations: 50_000,
                    graph: multitask_clip(4)?,
                },
                DynamicPhase {
                    label: "7 tasks".to_string(),
                    iterations: 60_000,
                    graph: multitask_clip(7)?,
                },
                DynamicPhase {
                    label: "10 tasks".to_string(),
                    iterations: 50_000,
                    graph: multitask_clip(10)?,
                },
                DynamicPhase {
                    label: "7 tasks (early tasks finished)".to_string(),
                    iterations: 40_000,
                    graph: multitask_clip(7)?,
                },
            ],
        ))
    }

    /// The OFASys dynamic schedule used in Fig. 13 (≈100k iterations).
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if any phase graph fails to build.
    pub fn ofasys_schedule() -> Result<Self, GraphError> {
        Ok(Self::new(
            "OFASys",
            vec![
                DynamicPhase {
                    label: "4 tasks".to_string(),
                    iterations: 30_000,
                    graph: ofasys(4)?,
                },
                DynamicPhase {
                    label: "7 tasks".to_string(),
                    iterations: 40_000,
                    graph: ofasys(7)?,
                },
                DynamicPhase {
                    label: "5 tasks".to_string(),
                    iterations: 30_000,
                    graph: ofasys(5)?,
                },
            ],
        ))
    }

    /// Workload name (for experiment output).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The phases in training order.
    #[must_use]
    pub fn phases(&self) -> &[DynamicPhase] {
        &self.phases
    }

    /// The phase graphs in training order — the shape consumed by
    /// `SpindleSession::plan_phases_parallel`.
    #[must_use]
    pub fn phase_graphs(&self) -> Vec<&ComputationGraph> {
        self.phases.iter().map(|p| &p.graph).collect()
    }

    /// A schedule with this schedule's phases repeated `times` in a row —
    /// used to scale phase-parallelism experiments beyond the native phase
    /// count.
    #[must_use]
    pub fn repeated(&self, times: usize) -> Self {
        let mut phases = Vec::with_capacity(self.phases.len() * times);
        for _ in 0..times.max(1) {
            phases.extend(self.phases.iter().cloned());
        }
        Self::new(format!("{} x{}", self.name, times.max(1)), phases)
    }

    /// Total number of iterations across all phases.
    #[must_use]
    pub fn total_iterations(&self) -> u64 {
        self.phases.iter().map(|p| p.iterations).sum()
    }

    /// Number of times the workload changes (requiring a new execution plan).
    #[must_use]
    pub fn num_changes(&self) -> usize {
        self.phases.len().saturating_sub(1)
    }
}

/// Convenience: the presets of every phase boundary in Fig. 13's x-axis order.
#[must_use]
pub fn figure13_presets() -> Vec<WorkloadPreset> {
    vec![
        WorkloadPreset::MultitaskClip { tasks: 4 },
        WorkloadPreset::MultitaskClip { tasks: 7 },
        WorkloadPreset::MultitaskClip { tasks: 10 },
        WorkloadPreset::Ofasys { tasks: 4 },
        WorkloadPreset::Ofasys { tasks: 7 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_schedule_grows_then_shrinks() {
        let w = DynamicWorkload::multitask_clip_schedule().unwrap();
        assert_eq!(w.name(), "Multitask-CLIP");
        assert_eq!(w.phases().len(), 4);
        assert_eq!(w.num_changes(), 3);
        assert_eq!(w.total_iterations(), 200_000);
        let task_counts: Vec<usize> = w.phases().iter().map(|p| p.graph.tasks().len()).collect();
        assert_eq!(task_counts, vec![4, 7, 10, 7]);
    }

    #[test]
    fn phase_graphs_and_repetition_are_consistent() {
        let w = DynamicWorkload::multitask_clip_schedule().unwrap();
        assert_eq!(w.phase_graphs().len(), w.phases().len());
        let doubled = w.repeated(2);
        assert_eq!(doubled.phases().len(), 2 * w.phases().len());
        assert_eq!(doubled.total_iterations(), 2 * w.total_iterations());
        assert!(doubled.name().contains("x2"));
        assert_eq!(w.repeated(0).phases().len(), w.phases().len());
    }

    #[test]
    fn ofasys_schedule_is_well_formed() {
        let w = DynamicWorkload::ofasys_schedule().unwrap();
        assert_eq!(w.total_iterations(), 100_000);
        assert!(w.phases().iter().all(|p| p.iterations > 0));
        assert!(w.phases().iter().all(|p| !p.label.is_empty()));
    }

    #[test]
    fn figure13_presets_build() {
        for p in figure13_presets() {
            assert!(p.build().is_ok());
        }
    }
}
