//! Multi-tenant trace generation: many independent arrival schedules merged
//! onto one global timeline.
//!
//! A planning *service* (as opposed to a single session) faces hundreds of
//! concurrent tenants, each with its own task-churn process. A
//! [`TenantFleet`] synthesises that load deterministically: a small pool of
//! seeded [`ArrivalSchedule`]s is shared across tenants (phase graphs are
//! wrapped in [`Arc`] once per pooled schedule, so a 500-tenant fleet costs
//! the memory of its pool, not of 500 traces), each tenant replays one pooled
//! schedule at a seeded start offset, and all events are merged into one
//! timeline ordered by timestamp. The same seed always produces the same
//! fleet — load generators and benches replay it reproducibly.

use std::sync::Arc;

use spindle_graph::{ComputationGraph, GraphError, XorShift64Star};

use crate::{hyperscale_churn, ArrivalSchedule, HYPERSCALE_ROSTER};

/// How many distinct seeded schedules a fleet pools by default; tenants
/// beyond the pool size replay a pooled trace at a different start offset.
pub const FLEET_DEFAULT_POOL: usize = 8;

/// One task-mix change of one tenant: at `at_s` (seconds since fleet start)
/// tenant `tenant`'s active task set becomes `graph`.
#[derive(Debug, Clone)]
pub struct TenantEvent {
    /// Event timestamp, seconds since fleet start.
    pub at_s: f64,
    /// The tenant whose task mix changes (dense ids `0..num_tenants`).
    pub tenant: usize,
    /// Human-readable description of the new task set.
    pub label: String,
    /// The tenant's new computation graph (shared across tenants replaying
    /// the same pooled schedule).
    pub graph: Arc<ComputationGraph>,
}

/// A merged timeline of task-mix changes across many synthetic tenants.
#[derive(Debug, Clone)]
pub struct TenantFleet {
    name: String,
    num_tenants: usize,
    horizon_s: f64,
    events: Vec<TenantEvent>,
}

impl TenantFleet {
    /// Builds a fleet of `tenants` tenants over a pool of schedules: tenant
    /// `t` replays `pool[t % pool.len()]` shifted by a seeded start offset in
    /// `[0, max_offset_s)`. Events are merged into one timeline ordered by
    /// timestamp (ties broken by tenant id), and the fleet horizon covers
    /// every tenant's shifted schedule.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty, `tenants` is zero or `max_offset_s` is
    /// negative.
    #[must_use]
    pub fn from_pool(
        name: impl Into<String>,
        pool: &[ArrivalSchedule],
        seed: u64,
        tenants: usize,
        max_offset_s: f64,
    ) -> Self {
        assert!(!pool.is_empty(), "fleet needs at least one pooled schedule");
        assert!(tenants > 0, "fleet needs at least one tenant");
        assert!(max_offset_s >= 0.0, "start offsets cannot be negative");
        // Share each pooled schedule's phase graphs once across all tenants
        // replaying it.
        let shared: Vec<Vec<(f64, String, Arc<ComputationGraph>)>> = pool
            .iter()
            .map(|s| {
                s.arrivals()
                    .iter()
                    .map(|a| (a.at_s, a.label.clone(), Arc::new(a.graph.clone())))
                    .collect()
            })
            .collect();
        let mut rng = XorShift64Star::new(seed);
        let mut events = Vec::new();
        let mut horizon_s = 0.0f64;
        for tenant in 0..tenants {
            let offset = rng.next_f64() * max_offset_s;
            let slot = tenant % pool.len();
            for (at_s, label, graph) in &shared[slot] {
                events.push(TenantEvent {
                    at_s: at_s + offset,
                    tenant,
                    label: label.clone(),
                    graph: Arc::clone(graph),
                });
            }
            horizon_s = horizon_s.max(offset + pool[slot].horizon_s());
        }
        events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s).then(a.tenant.cmp(&b.tenant)));
        Self {
            name: name.into(),
            num_tenants: tenants,
            horizon_s,
            events,
        }
    }

    /// A fleet of Multitask-CLIP tenants: the pool holds
    /// `min(tenants, `[`FLEET_DEFAULT_POOL`]`)` seeded
    /// [`ArrivalSchedule::multitask_clip_arrivals`] traces of
    /// `phases_per_tenant` phases at mean gap `mean_gap_s`, and tenant start
    /// offsets are spread over one mean gap.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if a phase graph fails to build.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` or `phases_per_tenant` is zero, or `mean_gap_s` is
    /// not positive.
    pub fn clip_fleet(
        seed: u64,
        tenants: usize,
        phases_per_tenant: usize,
        mean_gap_s: f64,
    ) -> Result<Self, GraphError> {
        assert!(tenants > 0, "fleet needs at least one tenant");
        let pool_size = tenants.min(FLEET_DEFAULT_POOL);
        let pool: Vec<ArrivalSchedule> = (0..pool_size)
            .map(|i| {
                ArrivalSchedule::multitask_clip_arrivals(
                    seed.wrapping_add(i as u64),
                    phases_per_tenant,
                    mean_gap_s,
                )
            })
            .collect::<Result<_, _>>()?;
        Ok(Self::from_pool(
            format!("CLIP fleet ({tenants} tenants, seed {seed})"),
            &pool,
            seed,
            tenants,
            mean_gap_s,
        ))
    }

    /// A CLIP fleet with one deliberately *chatty* tenant: tenant 0 churns
    /// `chatter`× as often as everyone else (`chatter * phases_per_tenant`
    /// phases at mean gap `mean_gap_s / chatter`), while tenants `1..` keep
    /// the regular [`Self::clip_fleet`] cadence. This is the adversarial
    /// input for per-tenant fairness: without weighting or throttling the
    /// chatty tenant monopolises the worker drain.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if a phase graph fails to build.
    ///
    /// # Panics
    ///
    /// Panics if `tenants < 2` (a chatty tenant needs quiet victims),
    /// `phases_per_tenant` or `chatter` is zero, or `mean_gap_s` is not
    /// positive.
    pub fn chatty_clip_fleet(
        seed: u64,
        tenants: usize,
        phases_per_tenant: usize,
        mean_gap_s: f64,
        chatter: usize,
    ) -> Result<Self, GraphError> {
        assert!(tenants >= 2, "a chatty tenant needs quiet victims");
        assert!(chatter > 0, "chatter multiplier must be positive");
        let mut fleet = Self::clip_fleet(seed, tenants, phases_per_tenant, mean_gap_s)?;
        let chatty = ArrivalSchedule::multitask_clip_arrivals(
            seed ^ 0xC4A7_7E17,
            phases_per_tenant * chatter,
            mean_gap_s / chatter as f64,
        )?;
        fleet.events.retain(|e| e.tenant != 0);
        for a in chatty.arrivals() {
            fleet.events.push(TenantEvent {
                at_s: a.at_s,
                tenant: 0,
                label: format!("chatty {}", a.label),
                graph: Arc::new(a.graph.clone()),
            });
        }
        fleet
            .events
            .sort_by(|a, b| a.at_s.total_cmp(&b.at_s).then(a.tenant.cmp(&b.tenant)));
        fleet.horizon_s = fleet.horizon_s.max(chatty.horizon_s());
        fleet.name =
            format!("Chatty CLIP fleet ({tenants} tenants, tenant 0 at {chatter}x, seed {seed})");
        Ok(fleet)
    }

    /// A fleet of hyperscale-churn tenants: the pool holds
    /// `min(tenants, `[`FLEET_DEFAULT_POOL`]`)` seeded
    /// [`hyperscale_churn`] traces starting from `initial_tasks` active
    /// roster slots (clamped to [`HYPERSCALE_ROSTER`]). This is the
    /// service-scale stress input: each event re-plans a many-task graph.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if a phase graph fails to build.
    ///
    /// # Panics
    ///
    /// Panics if `tenants`, `phases_per_tenant` or `initial_tasks` is zero,
    /// or `mean_gap_s` is not positive.
    pub fn hyperscale_fleet(
        seed: u64,
        tenants: usize,
        phases_per_tenant: usize,
        initial_tasks: usize,
        mean_gap_s: f64,
    ) -> Result<Self, GraphError> {
        assert!(tenants > 0, "fleet needs at least one tenant");
        let pool_size = tenants.min(FLEET_DEFAULT_POOL);
        let pool: Vec<ArrivalSchedule> = (0..pool_size)
            .map(|i| {
                hyperscale_churn(
                    seed.wrapping_add(i as u64),
                    initial_tasks.min(HYPERSCALE_ROSTER),
                    phases_per_tenant,
                    mean_gap_s,
                )
            })
            .collect::<Result<_, _>>()?;
        Ok(Self::from_pool(
            format!("Hyperscale fleet ({tenants} tenants, seed {seed})"),
            &pool,
            seed,
            tenants,
            mean_gap_s,
        ))
    }

    /// Fleet name (for experiment output).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tenants (dense ids `0..num_tenants`).
    #[must_use]
    pub fn num_tenants(&self) -> usize {
        self.num_tenants
    }

    /// The merged timeline, ordered by timestamp.
    #[must_use]
    pub fn events(&self) -> &[TenantEvent] {
        &self.events
    }

    /// End of the fleet's run, seconds since fleet start.
    #[must_use]
    pub fn horizon_s(&self) -> f64 {
        self.horizon_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_fleet_is_deterministic_and_ordered() {
        let a = TenantFleet::clip_fleet(11, 20, 4, 10.0).unwrap();
        let b = TenantFleet::clip_fleet(11, 20, 4, 10.0).unwrap();
        assert_eq!(a.num_tenants(), 20);
        assert_eq!(a.events().len(), 20 * 4);
        assert_eq!(a.events().len(), b.events().len());
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.label, y.label);
            assert!((x.at_s - y.at_s).abs() < 1e-12);
        }
        // Timeline ordered; every tenant appears; horizon beyond every event.
        assert!(a
            .events()
            .windows(2)
            .all(|w| w[0].at_s <= w[1].at_s + 1e-12));
        let mut seen = vec![false; a.num_tenants()];
        for e in a.events() {
            seen[e.tenant] = true;
            assert!(e.at_s <= a.horizon_s());
        }
        assert!(seen.iter().all(|&s| s));
        // Different seeds diverge.
        let c = TenantFleet::clip_fleet(12, 20, 4, 10.0).unwrap();
        let same = a
            .events()
            .iter()
            .zip(c.events())
            .all(|(x, y)| (x.at_s - y.at_s).abs() < 1e-12);
        assert!(!same);
    }

    #[test]
    fn pooled_graphs_are_shared_not_cloned() {
        let fleet = TenantFleet::clip_fleet(5, 32, 3, 10.0).unwrap();
        // 32 tenants share a pool of 8 schedules x 3 phases = 24 distinct
        // graphs; every other event graph is a pointer into that pool.
        let mut distinct: Vec<*const ComputationGraph> = fleet
            .events()
            .iter()
            .map(|e| Arc::as_ptr(&e.graph))
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), FLEET_DEFAULT_POOL * 3);
    }

    #[test]
    fn hyperscale_fleet_builds_many_task_graphs() {
        let fleet = TenantFleet::hyperscale_fleet(7, 10, 3, 12, 30.0).unwrap();
        assert_eq!(fleet.events().len(), 30);
        for e in fleet.events() {
            let tasks = e.graph.tasks().len();
            assert!((6..=18).contains(&tasks), "bounded churn walk: {tasks}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one pooled schedule")]
    fn empty_pool_panics() {
        let _ = TenantFleet::from_pool("empty", &[], 0, 1, 0.0);
    }
}
