//! Seeded scenario generation for the fuzzing harness: randomized
//! workload/cluster/churn configurations drawn from a single xorshift seed.
//!
//! A [`Scenario`] is everything one fuzz draw needs: a randomly shaped task
//! roster (tower shapes and depths, modality mixes, batch/sequence/hidden
//! dimensions), a cluster shape (NVLink islands of varying width),
//! heterogeneous per-device speed factors and transient straggler windows
//! for the event-driven simulator, a comm-overlap mode, a churn trace
//! toggling tasks in and out of the active set, and a device-level churn
//! trace (removals and restores) exercising elastic re-planning. Everything is
//! derived deterministically from `(seed, index)`, so any violation found by
//! the harness is re-runnable from those two numbers alone — and because the
//! scenario is plain data, it also supports *shrinking*: candidate reductions
//! (fewer tasks, less churn, a smaller cluster, shallower towers) that a
//! harness re-checks to find a minimal reproducer.
//!
//! The generator lives here rather than in the bench crate so workload-level
//! property tests (e.g. [`WorkloadSignature`](spindle_graph::WorkloadSignature)
//! injectivity) can draw from the same distribution the CI fuzz job explores.

use std::fmt::Write as _;

use spindle_graph::{
    ComputationGraph, GraphBuilder, GraphError, Modality, OpKind, TensorShape, XorShift64Star,
};

/// Bounds of the scenario space one fuzz run explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzBounds {
    /// Maximum tasks in a scenario's roster (≥ 1).
    pub max_tasks: usize,
    /// Maximum NVLink islands (nodes) of the cluster (≥ 1).
    pub max_nodes: usize,
    /// Maximum GPUs per island (≥ 1).
    pub max_gpus_per_node: usize,
    /// Maximum encoder-tower depth of a task (≥ 1).
    pub max_tower_layers: usize,
    /// Maximum churn events after the initial phase.
    pub max_churn_events: usize,
    /// Maximum time-bounded straggler windows per draw.
    pub max_straggler_windows: usize,
    /// Maximum device-level churn events (removals/restores) per draw.
    pub max_device_churn: usize,
    /// Maximum checkpoint cadence in iterations (≥ 1); a quarter of draws
    /// disable checkpoint modeling instead.
    pub max_checkpoint_cadence: u32,
    /// Maximum per-node storage bandwidth in GB/s (≥ 2; draws land in
    /// `[1, max)`).
    pub max_storage_gbps: u64,
}

impl FuzzBounds {
    /// The quick-mode bounds used by the CI smoke job: small enough that a
    /// 64-draw batch over four planning systems finishes in seconds.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            max_tasks: 6,
            max_nodes: 4,
            max_gpus_per_node: 8,
            max_tower_layers: 8,
            max_churn_events: 3,
            max_straggler_windows: 2,
            max_device_churn: 2,
            max_checkpoint_cadence: 16,
            max_storage_gbps: 16,
        }
    }

    /// The full-mode bounds: mid-scale clusters and rosters, still far below
    /// the hyperscale preset (which the Fig. 8-style experiment covers
    /// deterministically).
    #[must_use]
    pub fn full() -> Self {
        Self {
            max_tasks: 12,
            max_nodes: 8,
            max_gpus_per_node: 8,
            max_tower_layers: 16,
            max_churn_events: 6,
            max_straggler_windows: 4,
            max_device_churn: 4,
            max_checkpoint_cadence: 64,
            max_storage_gbps: 40,
        }
    }
}

impl Default for FuzzBounds {
    fn default() -> Self {
        Self::full()
    }
}

/// The macro-structure of one randomized task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TowerShape {
    /// One encoder tower feeding a contrastive loss (MetaLevels 0–1).
    Single,
    /// A modality tower and a text tower joined by a contrastive loss — the
    /// CLIP-style dual encoder.
    Dual,
    /// Adaptor → encoder tower → projection → generative loss (MetaLevels
    /// 0–3), the deep pipeline of the hyperscale preset.
    Deep,
}

impl TowerShape {
    fn label(self) -> &'static str {
        match self {
            TowerShape::Single => "single",
            TowerShape::Dual => "dual",
            TowerShape::Deep => "deep",
        }
    }
}

/// One randomly drawn task template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzTask {
    /// Non-text modality of the task.
    pub modality: Modality,
    /// Per-task batch size.
    pub batch: u32,
    /// Sequence length of the tower input.
    pub seq: u32,
    /// Hidden dimension.
    pub hidden: u32,
    /// Encoder-tower depth.
    pub tower_layers: usize,
    /// Macro shape of the task graph.
    pub shape: TowerShape,
}

/// One churn event: roster slot `slot` arrives (joins the active set) or
/// departs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Index into the scenario's task roster.
    pub slot: usize,
    /// `true` for an arrival, `false` for a departure.
    pub arrive: bool,
}

/// A time-bounded slowdown of one device, consumed by the heterogeneous
/// simulator pass (a transient straggler rather than a permanently slow
/// device).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerWindow {
    /// The straggling device's stable id.
    pub device: u32,
    /// Execution-time multiplier while the window is active (≥ 1).
    pub slowdown: f64,
    /// Window start, seconds of simulated time.
    pub from_s: f64,
    /// Window end, seconds of simulated time.
    pub until_s: f64,
}

/// One device-level churn event, applied after the task-churn phases:
/// `remove == true` takes `devices` out of the cluster, `false` brings them
/// back. The generator guarantees removals never target an already-down
/// device and always leave at least one survivor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceChurnDraw {
    /// `true` removes the devices, `false` restores them.
    pub remove: bool,
    /// Stable device ids the event touches (non-empty).
    pub devices: Vec<u32>,
}

/// One fully specified fuzz draw. Plain data: the harness reads it, the
/// shrinker mutates copies of it, and [`Scenario::to_json`] serializes it for
/// violation reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Seed of the run this scenario was drawn in.
    pub seed: u64,
    /// Index of the draw within the run.
    pub index: u64,
    /// NVLink islands of the cluster.
    pub nodes: usize,
    /// GPUs per island.
    pub gpus_per_node: usize,
    /// The task roster.
    pub tasks: Vec<FuzzTask>,
    /// Initial active set (same length as `tasks`, at least one `true`).
    pub active: Vec<bool>,
    /// Churn trace applied after the initial phase.
    pub churn: Vec<ChurnEvent>,
    /// Heterogeneous per-device speed factors `(device id, factor < 1.0)`
    /// consumed by the event-driven simulator; unlisted devices run at
    /// nominal speed.
    pub speed_factors: Vec<(u32, f64)>,
    /// Whether the robustness pass overlaps boundary/sync flows (the
    /// simulator's `CommMode::Overlapped`) or serializes them; both modes
    /// run with link contention enabled.
    pub overlap_comm: bool,
    /// Transient straggler windows for the robustness pass.
    pub straggler_windows: Vec<StragglerWindow>,
    /// Device-level churn trace exercising elastic re-planning.
    pub device_churn: Vec<DeviceChurnDraw>,
    /// Checkpoint cadence in iterations for the recovery pass (`None`
    /// disables checkpoint modeling for this draw).
    pub checkpoint_cadence: Option<u32>,
    /// Per-node bandwidth of the checkpoint storage tier, GB/s; the spine
    /// keeps the default 4x node-link ratio.
    pub storage_gbps: f64,
}

const MODALITIES: [Modality; 8] = [
    Modality::Vision,
    Modality::Audio,
    Modality::Depth,
    Modality::Thermal,
    Modality::Motion,
    Modality::Video,
    Modality::BoundingBox,
    Modality::Structured,
];
const BATCHES: [u32; 6] = [4, 8, 16, 24, 32, 48];
const HIDDENS: [u32; 3] = [512, 768, 1024];

fn pick<T: Copy>(rng: &mut XorShift64Star, options: &[T]) -> T {
    options[(rng.next_u64() % options.len() as u64) as usize]
}

fn range(rng: &mut XorShift64Star, lo: u64, hi: u64) -> u64 {
    debug_assert!(hi > lo);
    lo + rng.next_u64() % (hi - lo)
}

impl Scenario {
    /// Draws scenario `index` of the run seeded with `seed`, within `bounds`.
    /// The per-draw stream is independent of every other draw (the index is
    /// folded into the seed scrambler), so draws can be reproduced — and
    /// shrunk — in isolation.
    #[must_use]
    pub fn draw(seed: u64, index: u64, bounds: &FuzzBounds) -> Self {
        let mut rng = XorShift64Star::new(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let nodes = range(&mut rng, 1, bounds.max_nodes as u64 + 1) as usize;
        let gpus_per_node = range(&mut rng, 1, bounds.max_gpus_per_node as u64 + 1) as usize;
        let num_tasks = range(&mut rng, 1, bounds.max_tasks as u64 + 1) as usize;
        let tasks: Vec<FuzzTask> = (0..num_tasks)
            .map(|_| FuzzTask {
                modality: pick(&mut rng, &MODALITIES),
                batch: pick(&mut rng, &BATCHES),
                seq: range(&mut rng, 16, 320) as u32,
                hidden: pick(&mut rng, &HIDDENS),
                tower_layers: range(&mut rng, 1, bounds.max_tower_layers as u64 + 1) as usize,
                shape: match rng.next_u64() % 3 {
                    0 => TowerShape::Single,
                    1 => TowerShape::Dual,
                    _ => TowerShape::Deep,
                },
            })
            .collect();
        // Most tasks start active; the rest are churn-in candidates. At
        // least one task must be active or there is no phase-0 graph.
        let mut active: Vec<bool> = (0..num_tasks).map(|_| rng.next_u64() % 5 != 0).collect();
        if !active.iter().any(|&a| a) {
            active[0] = true;
        }
        // Churn: each event toggles one slot, preferring toggles that keep
        // the active set non-empty (a departure emptying the set becomes an
        // arrival of the same slot's opposite).
        let mut churn = Vec::new();
        let mut live = active.clone();
        let mut live_count = live.iter().filter(|&&a| a).count();
        let events = range(&mut rng, 0, bounds.max_churn_events as u64 + 1) as usize;
        for _ in 0..events {
            let slot = range(&mut rng, 0, num_tasks as u64) as usize;
            let arrive = if live[slot] {
                // Departure, unless it would empty the active set.
                live_count == 1
            } else {
                true
            };
            if live[slot] == arrive {
                continue; // No-op toggle (the single live task stays).
            }
            live[slot] = arrive;
            live_count = if arrive {
                live_count + 1
            } else {
                live_count - 1
            };
            churn.push(ChurnEvent { slot, arrive });
        }
        // A sparse set of slow devices (spot-market stragglers) for the
        // heterogeneous simulator pass.
        let num_devices = (nodes * gpus_per_node) as u64;
        let slow = rng.next_u64() % (num_devices / 4 + 1);
        let mut speed_factors = Vec::new();
        for _ in 0..slow {
            let device = (rng.next_u64() % num_devices) as u32;
            if speed_factors.iter().all(|&(d, _)| d != device) {
                // Factors in [0.5, 1.0): slower, never faster than nominal.
                speed_factors.push((device, 0.5 + 0.5 * rng.next_f64()));
            }
        }
        speed_factors.sort_by_key(|&(d, _)| d);
        // Comm-overlap mode and transient straggler windows for the
        // robustness pass. Window times are fractions of a second — the
        // scale of one simulated iteration — so some windows overlap real
        // execution and some land harmlessly outside it.
        let overlap_comm = rng.next_u64() % 2 == 0;
        let windows = range(&mut rng, 0, bounds.max_straggler_windows as u64 + 1);
        let mut straggler_windows = Vec::new();
        for _ in 0..windows {
            let from_s = 0.1 * rng.next_f64();
            straggler_windows.push(StragglerWindow {
                device: (rng.next_u64() % num_devices) as u32,
                slowdown: 1.5 + 2.5 * rng.next_f64(),
                from_s,
                until_s: from_s + 0.01 + 0.19 * rng.next_f64(),
            });
        }
        // Device-level churn: removals draw contiguous-mod-wrap spans of
        // currently-up devices, capped so at least half the cluster (and
        // always at least one device) survives; a coin flip turns an event
        // into a restore of the oldest casualties instead.
        let mut device_churn = Vec::new();
        let mut down: Vec<u32> = Vec::new();
        let max_down = (num_devices as usize) / 2;
        let churn_events = range(&mut rng, 0, bounds.max_device_churn as u64 + 1) as usize;
        for _ in 0..churn_events {
            if !down.is_empty() && rng.next_u64() % 2 == 0 {
                let k = range(&mut rng, 1, down.len() as u64 + 1) as usize;
                let devices: Vec<u32> = down.drain(..k).collect();
                device_churn.push(DeviceChurnDraw {
                    remove: false,
                    devices,
                });
            } else {
                let headroom = max_down.saturating_sub(down.len());
                if headroom == 0 {
                    continue;
                }
                let k = range(&mut rng, 1, headroom as u64 + 1) as usize;
                let start = rng.next_u64() % num_devices;
                let devices: Vec<u32> = (0..num_devices)
                    .map(|i| ((start + i) % num_devices) as u32)
                    .filter(|d| !down.contains(d))
                    .take(k)
                    .collect();
                down.extend(&devices);
                device_churn.push(DeviceChurnDraw {
                    remove: true,
                    devices,
                });
            }
        }
        // Checkpoint/restore dimensions for the recovery invariants, drawn
        // last so the earlier fields of historical (seed, index) pairs stay
        // stable: a cadence (a quarter of draws disable modeling) and the
        // storage tier's per-node bandwidth.
        let checkpoint_cadence = if rng.next_u64() % 4 == 0 {
            None
        } else {
            Some(range(&mut rng, 1, u64::from(bounds.max_checkpoint_cadence) + 1) as u32)
        };
        let storage_gbps = 1.0 + (bounds.max_storage_gbps.max(2) - 1) as f64 * rng.next_f64();
        Self {
            seed,
            index,
            nodes,
            gpus_per_node,
            tasks,
            active,
            churn,
            speed_factors,
            overlap_comm,
            straggler_windows,
            device_churn,
            checkpoint_cadence,
            storage_gbps,
        }
    }

    /// Total devices of the scenario's cluster.
    #[must_use]
    pub fn num_devices(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Builds the graph of one active set over the roster.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if the active set selects no task.
    pub fn graph_of(&self, active: &[bool]) -> Result<ComputationGraph, GraphError> {
        let mut b = GraphBuilder::new();
        for (slot, task) in self.tasks.iter().enumerate() {
            if !active.get(slot).copied().unwrap_or(false) {
                continue;
            }
            let t = b.add_task(
                format!("fuzz-{slot}"),
                [task.modality, Modality::Text],
                task.batch,
            );
            let tower_shape = TensorShape::new(task.batch, task.seq, task.hidden);
            let head_shape = TensorShape::new(task.batch, 1, task.hidden);
            match task.shape {
                TowerShape::Single => {
                    let tower = b.add_op_chain(
                        t,
                        OpKind::Encoder(task.modality),
                        tower_shape,
                        task.tower_layers,
                    )?;
                    let loss = b.add_op(t, OpKind::ContrastiveLoss, head_shape)?;
                    b.add_flow(*tower.last().expect("towers are non-empty"), loss)?;
                }
                TowerShape::Dual => {
                    let tower = b.add_op_chain(
                        t,
                        OpKind::Encoder(task.modality),
                        tower_shape,
                        task.tower_layers,
                    )?;
                    let text = b.add_op_chain(
                        t,
                        OpKind::Encoder(Modality::Text),
                        TensorShape::new(task.batch, 77, task.hidden),
                        (task.tower_layers / 2).max(1),
                    )?;
                    let loss = b.add_op(t, OpKind::ContrastiveLoss, head_shape)?;
                    b.add_flow(*tower.last().expect("towers are non-empty"), loss)?;
                    b.add_flow(*text.last().expect("towers are non-empty"), loss)?;
                }
                TowerShape::Deep => {
                    let adaptor = b.add_op(t, OpKind::Adaptor(task.modality), tower_shape)?;
                    let tower = b.add_op_chain(
                        t,
                        OpKind::Encoder(task.modality),
                        tower_shape,
                        task.tower_layers,
                    )?;
                    b.add_flow(adaptor, tower[0])?;
                    let proj = b.add_op(t, OpKind::Projection, head_shape)?;
                    b.add_flow(*tower.last().expect("towers are non-empty"), proj)?;
                    let loss = b.add_op(t, OpKind::GenerativeLoss, head_shape)?;
                    b.add_flow(proj, loss)?;
                }
            }
        }
        b.build()
    }

    /// The phase sequence of the scenario: the initial active set followed by
    /// the active set after each churn event, each as a labelled graph.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if a phase graph fails to build.
    pub fn phases(&self) -> Result<Vec<(String, ComputationGraph)>, GraphError> {
        let mut active = self.active.clone();
        let count = active.iter().filter(|&&a| a).count();
        let mut phases = vec![(format!("{count} tasks"), self.graph_of(&active)?)];
        for event in &self.churn {
            active[event.slot] = event.arrive;
            let count = active.iter().filter(|&&a| a).count();
            let sign = if event.arrive { '+' } else { '-' };
            phases.push((
                format!("{count} tasks ({sign}fuzz-{})", event.slot),
                self.graph_of(&active)?,
            ));
        }
        Ok(phases)
    }

    /// Candidate reductions of this scenario, in the order a shrinker should
    /// try them: structurally large cuts first (drop all churn, halve the
    /// roster), then single-element cuts (one churn event, one task, one
    /// island), then parameter cuts (halve tower depths). Every candidate is
    /// strictly smaller by at least one measure and remains well-formed (≥ 1
    /// task, ≥ 1 device, a non-empty initial active set).
    #[must_use]
    pub fn shrink_candidates(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        // Drop churn wholesale, then one event at a time (from the back, so
        // prefixes — which the trace semantics depend on — stay intact).
        if !self.churn.is_empty() {
            let mut s = self.clone();
            s.churn.clear();
            out.push(s);
            let mut s = self.clone();
            s.churn.pop();
            out.push(s);
        }
        // Drop the robustness-pass dimensions: device churn (wholesale,
        // then from the back so the remove-before-restore prefix structure
        // survives) and straggler windows.
        if !self.device_churn.is_empty() {
            let mut s = self.clone();
            s.device_churn.clear();
            out.push(s);
            let mut s = self.clone();
            s.device_churn.pop();
            out.push(s);
        }
        if !self.straggler_windows.is_empty() {
            let mut s = self.clone();
            s.straggler_windows.clear();
            out.push(s);
        }
        // Remove one task (re-indexing churn and dropping its events).
        if self.tasks.len() > 1 {
            for slot in 0..self.tasks.len() {
                if let Some(s) = self.without_task(slot) {
                    out.push(s);
                }
            }
        }
        // Shrink the cluster. Per-device draws (speed factors, straggler
        // windows, device churn) are re-fitted to the smaller id space.
        if self.nodes > 1 {
            let mut s = self.clone();
            s.nodes = self.nodes / 2;
            s.sanitize_devices();
            out.push(s);
        }
        if self.gpus_per_node > 1 {
            let mut s = self.clone();
            s.gpus_per_node = self.gpus_per_node / 2;
            s.sanitize_devices();
            out.push(s);
        }
        // Shallower towers.
        if self.tasks.iter().any(|t| t.tower_layers > 1) {
            let mut s = self.clone();
            for t in &mut s.tasks {
                t.tower_layers = (t.tower_layers / 2).max(1);
            }
            out.push(s);
        }
        out
    }

    /// A copy with task `slot` removed, or `None` if removing it would leave
    /// the initial active set empty.
    fn without_task(&self, slot: usize) -> Option<Scenario> {
        let mut s = self.clone();
        s.tasks.remove(slot);
        s.active.remove(slot);
        if !s.active.iter().any(|&a| a) {
            return None;
        }
        s.churn.retain(|e| e.slot != slot);
        for e in &mut s.churn {
            if e.slot > slot {
                e.slot -= 1;
            }
        }
        // Dropping events can make the remaining trace redundant (toggling a
        // slot to the state it is already in); drop those no-ops too.
        let mut live = s.active.clone();
        s.churn.retain(|e| {
            if live[e.slot] == e.arrive {
                return false;
            }
            live[e.slot] = e.arrive;
            true
        });
        // A departure trace may now empty the set; give up on this candidate
        // if so (other candidates will apply).
        let mut live = s.active.clone();
        for e in &s.churn {
            live[e.slot] = e.arrive;
            if !live.iter().any(|&a| a) {
                return None;
            }
        }
        Some(s)
    }

    /// Re-fits every per-device draw to the current device id space after a
    /// cluster shrink: out-of-range speed factors and straggler windows are
    /// dropped, device-churn events lose their out-of-range ids (empty
    /// events vanish), and the churn trace is truncated at the first removal
    /// that would no longer leave a survivor.
    fn sanitize_devices(&mut self) {
        let n = self.num_devices() as u32;
        self.speed_factors.retain(|&(d, _)| d < n);
        self.straggler_windows.retain(|w| w.device < n);
        let mut down = 0usize;
        let mut kept = Vec::new();
        for mut e in std::mem::take(&mut self.device_churn) {
            e.devices.retain(|&d| d < n);
            if e.devices.is_empty() {
                continue;
            }
            if e.remove {
                if down + e.devices.len() >= n as usize {
                    break;
                }
                down += e.devices.len();
            } else {
                down = down.saturating_sub(e.devices.len());
            }
            kept.push(e);
        }
        self.device_churn = kept;
    }

    /// A compact one-line label for progress output.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "draw {} (seed {}): {} tasks ({} active), {}x{} GPUs, {} churn events, \
             {} slow devices, {} stragglers, {} device-churn events, {} comm, \
             ckpt {}, storage {:.1} GB/s",
            self.index,
            self.seed,
            self.tasks.len(),
            self.active.iter().filter(|&&a| a).count(),
            self.nodes,
            self.gpus_per_node,
            self.churn.len(),
            self.speed_factors.len(),
            self.straggler_windows.len(),
            self.device_churn.len(),
            if self.overlap_comm {
                "overlapped"
            } else {
                "serialized"
            },
            self.checkpoint_cadence
                .map_or_else(|| "off".to_string(), |k| format!("every {k}")),
            self.storage_gbps
        )
    }

    /// Serializes the full configuration as JSON — the shape violation
    /// reports embed so an offending draw can be inspected (and re-drawn via
    /// `--seed`/`--index`) without re-running the generator. Hand-rolled:
    /// no JSON crate is available offline.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"seed\": {}, \"index\": {}, \"nodes\": {}, \"gpus_per_node\": {}, ",
            self.seed, self.index, self.nodes, self.gpus_per_node
        );
        out.push_str("\"tasks\": [");
        for (i, t) in self.tasks.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"modality\": \"{:?}\", \"batch\": {}, \"seq\": {}, \"hidden\": {}, \
                 \"tower_layers\": {}, \"shape\": \"{}\", \"active\": {}}}",
                if i > 0 { ", " } else { "" },
                t.modality,
                t.batch,
                t.seq,
                t.hidden,
                t.tower_layers,
                t.shape.label(),
                self.active[i]
            );
        }
        out.push_str("], \"churn\": [");
        for (i, e) in self.churn.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"slot\": {}, \"arrive\": {}}}",
                if i > 0 { ", " } else { "" },
                e.slot,
                e.arrive
            );
        }
        out.push_str("], \"speed_factors\": [");
        for (i, &(d, f)) in self.speed_factors.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"device\": {d}, \"factor\": {f:.3}}}",
                if i > 0 { ", " } else { "" }
            );
        }
        let _ = write!(out, "], \"overlap_comm\": {}, ", self.overlap_comm);
        out.push_str("\"straggler_windows\": [");
        for (i, w) in self.straggler_windows.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"device\": {}, \"slowdown\": {:.3}, \"from_s\": {:.4}, \"until_s\": {:.4}}}",
                if i > 0 { ", " } else { "" },
                w.device,
                w.slowdown,
                w.from_s,
                w.until_s
            );
        }
        out.push_str("], \"device_churn\": [");
        for (i, e) in self.device_churn.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"remove\": {}, \"devices\": {:?}}}",
                if i > 0 { ", " } else { "" },
                e.remove,
                e.devices
            );
        }
        let _ = write!(
            out,
            "], \"checkpoint_cadence\": {}, \"storage_gbps\": {:.3}}}",
            self.checkpoint_cadence
                .map_or_else(|| "null".to_string(), |k| k.to_string()),
            self.storage_gbps
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_and_independent() {
        let bounds = FuzzBounds::quick();
        let a = Scenario::draw(7, 3, &bounds);
        let b = Scenario::draw(7, 3, &bounds);
        assert_eq!(a, b, "same (seed, index) must reproduce the scenario");
        let c = Scenario::draw(7, 4, &bounds);
        let d = Scenario::draw(8, 3, &bounds);
        assert!(a != c || a != d, "distinct draws must diverge");
    }

    #[test]
    fn drawn_scenarios_are_well_formed() {
        let bounds = FuzzBounds::quick();
        for index in 0..64 {
            let s = Scenario::draw(42, index, &bounds);
            assert!(!s.tasks.is_empty() && s.tasks.len() <= bounds.max_tasks);
            assert!(s.nodes >= 1 && s.nodes <= bounds.max_nodes);
            assert!(s.gpus_per_node >= 1 && s.gpus_per_node <= bounds.max_gpus_per_node);
            assert!(s.active.iter().any(|&a| a), "at least one task is active");
            assert!(s.churn.len() <= bounds.max_churn_events);
            assert!(s
                .speed_factors
                .iter()
                .all(|&(d, f)| (d as usize) < s.num_devices() && (0.5..1.0).contains(&f)));
            assert!(s.straggler_windows.len() <= bounds.max_straggler_windows);
            assert!(s.straggler_windows.iter().all(|w| {
                (w.device as usize) < s.num_devices()
                    && w.slowdown >= 1.0
                    && w.until_s > w.from_s
                    && w.from_s >= 0.0
            }));
            // Device churn: never an empty event, never a double-remove,
            // restores only name down devices, at least one survivor at
            // every point of the trace.
            assert!(s.device_churn.len() <= bounds.max_device_churn);
            let mut down: Vec<u32> = Vec::new();
            for e in &s.device_churn {
                assert!(!e.devices.is_empty());
                assert!(e.devices.iter().all(|&d| (d as usize) < s.num_devices()));
                if e.remove {
                    assert!(e.devices.iter().all(|d| !down.contains(d)));
                    down.extend(&e.devices);
                    assert!(down.len() < s.num_devices(), "a removal left no survivor");
                } else {
                    assert!(e.devices.iter().all(|d| down.contains(d)));
                    down.retain(|d| !e.devices.contains(d));
                }
            }
            // Recovery dimensions stay within bounds.
            if let Some(k) = s.checkpoint_cadence {
                assert!(k >= 1 && k <= bounds.max_checkpoint_cadence);
            }
            assert!(
                s.storage_gbps >= 1.0 && s.storage_gbps <= bounds.max_storage_gbps as f64,
                "storage bandwidth out of bounds: {}",
                s.storage_gbps
            );
            // Every phase graph builds and stays non-empty.
            let phases = s.phases().unwrap();
            assert_eq!(phases.len(), s.churn.len() + 1);
            for (label, graph) in &phases {
                assert!(!graph.tasks().is_empty(), "{label}: empty phase");
            }
        }
    }

    #[test]
    fn shrink_candidates_are_strictly_smaller_and_well_formed() {
        let bounds = FuzzBounds::full();
        let s = Scenario::draw(1, 5, &bounds);
        let size = |x: &Scenario| {
            x.tasks.len() * 100_000
                + x.churn.len() * 10_000
                + x.device_churn.len() * 1_000
                + x.straggler_windows.len() * 300
                + x.num_devices() * 10
                + x.tasks.iter().map(|t| t.tower_layers).sum::<usize>()
        };
        for cand in s.shrink_candidates() {
            assert!(size(&cand) < size(&s), "candidate must shrink");
            assert!(!cand.tasks.is_empty());
            assert!(cand.num_devices() >= 1);
            assert!(cand.active.iter().any(|&a| a));
            // Per-device draws stay in range after a cluster shrink, and the
            // device-churn trace still leaves survivors at every step.
            let n = cand.num_devices() as u32;
            assert!(cand.speed_factors.iter().all(|&(d, _)| d < n));
            assert!(cand.straggler_windows.iter().all(|w| w.device < n));
            let mut down = 0usize;
            for e in &cand.device_churn {
                assert!(!e.devices.is_empty() && e.devices.iter().all(|&d| d < n));
                if e.remove {
                    down += e.devices.len();
                    assert!(down < n as usize);
                } else {
                    down = down.saturating_sub(e.devices.len());
                }
            }
            cand.phases().unwrap();
        }
    }

    #[test]
    fn json_serialization_mentions_every_dimension() {
        let s = Scenario::draw(9, 0, &FuzzBounds::quick());
        let json = s.to_json();
        for key in [
            "\"seed\"",
            "\"index\"",
            "\"nodes\"",
            "\"gpus_per_node\"",
            "\"tasks\"",
            "\"churn\"",
            "\"speed_factors\"",
            "\"tower_layers\"",
            "\"overlap_comm\"",
            "\"straggler_windows\"",
            "\"device_churn\"",
            "\"checkpoint_cadence\"",
            "\"storage_gbps\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
