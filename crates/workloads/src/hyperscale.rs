//! The hyperscale dynamic-churn workload: 48–64 concurrent tasks sized for
//! 256–512 simulated GPUs.
//!
//! The paper's presets top out at ten tasks on 32 GPUs — a scale where full
//! re-planning is already cheap, so incremental re-planning barely registers.
//! This preset models the regime the dynamic-schedule story (Appendix D) and
//! compound multi-task training systems actually live in: dozens of tasks,
//! hundreds of devices, and frequent task arrivals/departures, where a full
//! pipeline pass visibly hurts and the structural plan cache pays off.
//!
//! The roster holds [`HYPERSCALE_ROSTER`] task templates of two depths:
//!
//! * **shallow** tasks — an encoder tower feeding a contrastive loss
//!   (MetaLevels 0–1);
//! * **deep** tasks — a modality adaptor, a heavier encoder tower, a
//!   projection and a generative loss (MetaLevels 0–3).
//!
//! Because shallow tasks never reach levels 2–3, churning a shallow task
//! leaves the deep-only levels *clean*: an incremental re-plan splices their
//! cached schedules and re-solves only the levels the event actually touched.
//! Template dimensions (modality, batch, sequence length, tower depth) are
//! derived deterministically from the roster slot, so the same active set
//! always builds the same graph.

use spindle_graph::{
    ComputationGraph, GraphBuilder, GraphError, Modality, OpKind, TensorShape, XorShift64Star,
};

use crate::{ArrivalSchedule, PhaseArrival};

/// Number of task templates in the hyperscale roster.
pub const HYPERSCALE_ROSTER: usize = 64;

/// Default number of active tasks of the preset.
pub const HYPERSCALE_DEFAULT_TASKS: usize = 48;

/// One roster slot's template, derived from its index.
#[derive(Debug, Clone, Copy)]
struct TaskTemplate {
    modality: Modality,
    batch: u32,
    seq: u32,
    hidden: u32,
    tower_layers: usize,
    deep: bool,
}

fn template(slot: usize) -> TaskTemplate {
    const MODALITIES: [Modality; 6] = [
        Modality::Vision,
        Modality::Text,
        Modality::Audio,
        Modality::Depth,
        Modality::Thermal,
        Modality::Motion,
    ];
    const BATCHES: [u32; 5] = [16, 24, 32, 48, 64];
    const SEQS: [u32; 4] = [77, 128, 197, 257];
    let deep = slot % 2 == 0;
    TaskTemplate {
        modality: MODALITIES[slot % MODALITIES.len()],
        batch: BATCHES[slot % BATCHES.len()],
        seq: SEQS[slot % SEQS.len()],
        hidden: if deep { 1024 } else { 768 },
        tower_layers: if deep {
            12 + 4 * (slot % 4)
        } else {
            6 + 2 * (slot % 3)
        },
        deep,
    }
}

/// Builds the hyperscale workload over an explicit set of roster slots
/// (deduplicated, built in ascending slot order so a recurring active set
/// always produces the same graph).
///
/// # Errors
///
/// Returns a [`GraphError`] if `slots` selects no valid roster entry.
pub fn hyperscale_subset(slots: &[usize]) -> Result<ComputationGraph, GraphError> {
    let mut active: Vec<usize> = slots
        .iter()
        .copied()
        .filter(|&s| s < HYPERSCALE_ROSTER)
        .collect();
    active.sort_unstable();
    active.dedup();
    let mut b = GraphBuilder::new();
    for &slot in &active {
        let t = template(slot);
        let task = b.add_task(
            format!("hyper-{slot}"),
            [t.modality, Modality::Text],
            t.batch,
        );
        let tower_shape = TensorShape::new(t.batch, t.seq, t.hidden);
        if t.deep {
            let adaptor = b.add_op(task, OpKind::Adaptor(t.modality), tower_shape)?;
            let tower = b.add_op_chain(
                task,
                OpKind::Encoder(t.modality),
                tower_shape,
                t.tower_layers,
            )?;
            b.add_flow(adaptor, tower[0])?;
            let proj = b.add_op(
                task,
                OpKind::Projection,
                TensorShape::new(t.batch, 1, t.hidden),
            )?;
            b.add_flow(*tower.last().expect("towers are non-empty"), proj)?;
            let loss = b.add_op(
                task,
                OpKind::GenerativeLoss,
                TensorShape::new(t.batch, 1, t.hidden),
            )?;
            b.add_flow(proj, loss)?;
        } else {
            let tower = b.add_op_chain(
                task,
                OpKind::Encoder(t.modality),
                tower_shape,
                t.tower_layers,
            )?;
            let loss = b.add_op(
                task,
                OpKind::ContrastiveLoss,
                TensorShape::new(t.batch, 1, t.hidden),
            )?;
            b.add_flow(*tower.last().expect("towers are non-empty"), loss)?;
        }
    }
    b.build()
}

/// Builds the hyperscale workload with the first `num_tasks` roster slots
/// (clamped to [`HYPERSCALE_ROSTER`]).
///
/// # Errors
///
/// Returns a [`GraphError`] if `num_tasks` is zero.
pub fn hyperscale(num_tasks: usize) -> Result<ComputationGraph, GraphError> {
    let n = num_tasks.min(HYPERSCALE_ROSTER);
    let slots: Vec<usize> = (0..n).collect();
    hyperscale_subset(&slots)
}

/// A seeded arrival/departure churn trace over the hyperscale roster: the
/// active set starts as the first `initial_tasks` slots, and every subsequent
/// phase toggles exactly one roster slot — a departure when the set is large,
/// an arrival when it is small (bounded walk), exponential inter-arrival
/// times of mean `mean_gap_s`. Churn is bursty the way real compound
/// training workloads are: about half the events toggle the *previous*
/// event's slot back (a short-lived task joins and promptly finishes, or a
/// paused task resumes), so task mixes recur. Single-slot deltas are the
/// workload the incremental re-planner targets: each event perturbs only the
/// levels the toggled task participates in, and recurring mixes are served
/// from the placed-skeleton cache wholesale.
///
/// # Errors
///
/// Returns a [`GraphError`] if a phase graph fails to build.
///
/// # Panics
///
/// Panics if `phases` or `initial_tasks` is zero, or `mean_gap_s` is not
/// positive.
pub fn hyperscale_churn(
    seed: u64,
    initial_tasks: usize,
    phases: usize,
    mean_gap_s: f64,
) -> Result<ArrivalSchedule, GraphError> {
    assert!(phases > 0, "schedule needs at least one phase");
    assert!(initial_tasks > 0, "need at least one initial task");
    assert!(mean_gap_s > 0.0, "mean inter-arrival gap must be positive");
    let initial = initial_tasks.min(HYPERSCALE_ROSTER);
    let lo = initial.saturating_sub(6).max(1);
    let hi = (initial + 6).min(HYPERSCALE_ROSTER);
    let mut rng = XorShift64Star::new(seed);
    let mut active: Vec<bool> = (0..HYPERSCALE_ROSTER).map(|s| s < initial).collect();
    let mut count = initial;
    let mut at = 0.0;
    let mut last_slot: Option<usize> = None;
    let mut arrivals = Vec::with_capacity(phases);
    for i in 0..phases {
        let label = if i == 0 {
            format!("{count} tasks")
        } else {
            // Toggle one roster slot: prefer departures near the upper bound,
            // arrivals near the lower bound, otherwise flip a coin.
            let depart = if count >= hi {
                true
            } else if count <= lo {
                false
            } else {
                rng.next_u64() % 2 == 0
            };
            let pick = |rng: &mut XorShift64Star, active: &[bool], want: bool| {
                let candidates: Vec<usize> = (0..HYPERSCALE_ROSTER)
                    .filter(|&s| active[s] == want)
                    .collect();
                candidates[(rng.next_u64() % candidates.len() as u64) as usize]
            };
            // Bursty recurrence: half the time revert the previous toggle
            // (when its direction matches), bringing a prior mix back.
            let slot = match last_slot {
                Some(last) if active[last] == depart && rng.next_u64() % 2 == 0 => last,
                _ => pick(&mut rng, &active, depart),
            };
            last_slot = Some(slot);
            active[slot] = !depart;
            if depart {
                count -= 1;
            } else {
                count += 1;
            }
            let u = rng.next_f64();
            at += mean_gap_s * -(1.0 - u).max(f64::MIN_POSITIVE).ln();
            if depart {
                format!("{count} tasks (-hyper-{slot})")
            } else {
                format!("{count} tasks (+hyper-{slot})")
            }
        };
        let slots: Vec<usize> = (0..HYPERSCALE_ROSTER).filter(|&s| active[s]).collect();
        arrivals.push(PhaseArrival {
            at_s: at,
            label,
            graph: hyperscale_subset(&slots)?,
        });
    }
    Ok(ArrivalSchedule::new(
        format!("Hyperscale churn (seed {seed})"),
        arrivals,
        at + mean_gap_s,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_builds_with_mixed_depths() {
        let g = hyperscale(HYPERSCALE_DEFAULT_TASKS).unwrap();
        assert_eq!(g.tasks().len(), HYPERSCALE_DEFAULT_TASKS);
        // Deep tasks run adaptor → tower → projection → loss, shallow ones
        // tower → loss: their losses sit at different op depths (after
        // contraction this yields MetaLevels 0–3 for deep and 0–1 for
        // shallow tasks, which the incremental re-planner exploits).
        let depths = g.depths();
        let loss_depth = |task: usize| {
            g.ops_of_task(spindle_graph::TaskId(task as u32))
                .into_iter()
                .find(|&o| g.op(o).kind().is_loss())
                .map(|o| depths[o.index()])
                .unwrap()
        };
        // Slot 0 is deep, slot 1 shallow (templates alternate).
        assert!(loss_depth(0) > loss_depth(1) + 1);
        assert!(g.num_ops() > 400, "hyperscale must be big: {}", g.num_ops());
    }

    #[test]
    fn subsets_are_deterministic_and_order_insensitive() {
        let a = hyperscale_subset(&[5, 2, 9]).unwrap();
        let b = hyperscale_subset(&[9, 5, 2, 2]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.tasks().len(), 3);
        // Out-of-roster slots are ignored.
        let c = hyperscale_subset(&[2, 5, 9, HYPERSCALE_ROSTER + 7]).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn churn_toggles_one_task_per_phase_within_bounds() {
        let s = hyperscale_churn(42, 48, 12, 30.0).unwrap();
        assert_eq!(s.arrivals().len(), 12);
        assert_eq!(s.num_replans(), 11);
        let counts: Vec<usize> = s.arrivals().iter().map(|a| a.graph.tasks().len()).collect();
        assert_eq!(counts[0], 48);
        for pair in counts.windows(2) {
            let delta = pair[1] as i64 - pair[0] as i64;
            assert_eq!(delta.abs(), 1, "each phase toggles exactly one task");
        }
        assert!(counts.iter().all(|&c| (42..=54).contains(&c)));
        // Same seed reproduces the trace; a different seed diverges.
        let again = hyperscale_churn(42, 48, 12, 30.0).unwrap();
        for (x, y) in s.arrivals().iter().zip(again.arrivals()) {
            assert_eq!(x.label, y.label);
            assert!((x.at_s - y.at_s).abs() < 1e-12);
        }
        let other = hyperscale_churn(43, 48, 12, 30.0).unwrap();
        let same = s
            .arrivals()
            .iter()
            .zip(other.arrivals())
            .all(|(x, y)| x.label == y.label);
        assert!(!same, "different seeds must diverge");
    }
}
