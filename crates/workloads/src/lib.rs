//! # spindle-workloads
//!
//! The multi-task multi-modal workload presets used throughout the Spindle
//! evaluation (Tab. 1b and Appendix C of the paper):
//!
//! * [`multitask_clip`] — an ImageBind-style multi-task extension of CLIP:
//!   six modality encoders, up to ten contrastive tasks over modality pairs,
//!   ~1.2 B parameters, a lightweight cross-modal module (the contrastive
//!   loss).
//! * [`ofasys`] — an OFASys-style generalist model: lightweight modality
//!   adaptors feeding a shared encoder-decoder LM with a generative loss,
//!   up to seven tasks, ~0.66 B parameters.
//! * [`qwen_val`] — a QWen-VL/QWen-Audio-style model: heavy vision and audio
//!   encoders feeding a shared decoder-only LLM, three tasks
//!   (vision-language, audio-language, vision-audio-language), 9.25 B
//!   parameters, with 30 B and 70 B variants for the large-scale simulations
//!   of Appendix E.
//! * [`hyperscale`] — a beyond-paper stress preset: 48–64 heterogeneous
//!   tasks sized for 256–512 simulated GPUs, with a seeded single-task churn
//!   trace ([`hyperscale_churn`]) driving the incremental re-planner.
//! * [`DynamicWorkload`] — the changing task sets of Appendix D.
//! * [`ArrivalSchedule`] — dynamic workloads positioned on a simulated
//!   timeline (task arrivals/departures at timestamps), including a seeded
//!   random arrival process — the input to the runtime's online re-planning
//!   loop.
//! * [`Scenario`] — seeded randomized scenarios (task rosters, cluster
//!   shapes, churn traces, heterogeneous device speeds) for the fuzzing
//!   harness, with deterministic re-draw and shrinking support.
//! * [`TenantFleet`] — hundreds of concurrent synthetic tenants, each
//!   replaying a pooled seeded schedule, merged onto one global timeline —
//!   the input to the multi-tenant planning service's load generator.
//!
//! All builders return ordinary [`ComputationGraph`](spindle_graph::ComputationGraph)s;
//! parameters of components shared across tasks (modality encoders, the
//! unified LM) carry the same [`ParamId`](spindle_graph::ParamId)s so the
//! runtime synchronises them exactly as the paper's system does.
//!
//! ## Example
//!
//! ```
//! use spindle_workloads::{multitask_clip, WorkloadPreset};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = multitask_clip(4)?;
//! assert_eq!(graph.tasks().len(), 4);
//! // Roughly the 1.2 B parameters of Tab. 1b (shared encoders counted once).
//! let billions = WorkloadPreset::MultitaskClip { tasks: 10 }.build()?.total_param_bytes() as f64
//!     / 2.0 / 1e9;
//! assert!(billions > 0.9 && billions < 1.5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arrivals;
mod dynamic;
mod fleet;
mod fuzz;
mod hyperscale;
mod multitask_clip;
mod ofasys;
mod presets;
mod qwen_val;

pub use arrivals::{
    ArrivalSchedule, DeviceChurnEvent, DeviceChurnKind, PhaseArrival, ScheduleEvent,
};
pub use dynamic::{figure13_presets, DynamicPhase, DynamicWorkload};
pub use fleet::{TenantEvent, TenantFleet, FLEET_DEFAULT_POOL};
pub use fuzz::{
    ChurnEvent, DeviceChurnDraw, FuzzBounds, FuzzTask, Scenario, StragglerWindow, TowerShape,
};
pub use hyperscale::{
    hyperscale, hyperscale_churn, hyperscale_subset, HYPERSCALE_DEFAULT_TASKS, HYPERSCALE_ROSTER,
};
pub use multitask_clip::{multitask_clip, multitask_clip_with_batch};
pub use ofasys::ofasys;
pub use presets::WorkloadPreset;
pub use qwen_val::{qwen_val, QwenValSize};
