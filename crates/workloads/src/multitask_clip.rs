//! Multitask-CLIP: an ImageBind-style multi-task contrastive workload.

use spindle_graph::{
    ComputationGraph, GraphBuilder, GraphError, Modality, OpKind, ParamId, TaskId, TensorShape,
};

/// Per-modality encoder configuration (ImageBind-style tower sizes).
#[derive(Debug, Clone, Copy)]
struct EncoderSpec {
    modality: Modality,
    layers: usize,
    hidden: u32,
    seq: u32,
}

/// The six modality encoders of Multitask-CLIP. The vision tower is ViT-H
/// sized, text follows OpenCLIP's large text tower, and the remaining
/// modalities use ViT-B-sized towers — together roughly the 1.2 B parameters
/// reported in Tab. 1b.
const ENCODERS: [EncoderSpec; 6] = [
    EncoderSpec {
        modality: Modality::Vision,
        layers: 32,
        hidden: 1280,
        seq: 257,
    },
    EncoderSpec {
        modality: Modality::Text,
        layers: 24,
        hidden: 1024,
        seq: 77,
    },
    EncoderSpec {
        modality: Modality::Audio,
        layers: 12,
        hidden: 768,
        seq: 229,
    },
    EncoderSpec {
        modality: Modality::Depth,
        layers: 12,
        hidden: 768,
        seq: 197,
    },
    EncoderSpec {
        modality: Modality::Thermal,
        layers: 12,
        hidden: 768,
        seq: 197,
    },
    EncoderSpec {
        modality: Modality::Motion,
        layers: 6,
        hidden: 512,
        seq: 128,
    },
];

/// The ten contrastive tasks (pairs of modalities). The first four match the
/// task labels of Fig. 4 (Task1-Text/Audio, Task2-Vision/Depth,
/// Task3-Audio/Thermal, Task4-Motion/Thermal); the remainder extend to the
/// 7- and 10-task configurations of Fig. 8. Each task carries its own batch
/// size, which is what creates inter-task workload heterogeneity.
const TASKS: [(&str, Modality, Modality, u32); 10] = [
    ("text-audio", Modality::Text, Modality::Audio, 32),
    ("vision-depth", Modality::Vision, Modality::Depth, 16),
    ("audio-thermal", Modality::Audio, Modality::Thermal, 48),
    ("motion-thermal", Modality::Motion, Modality::Thermal, 64),
    ("vision-text", Modality::Vision, Modality::Text, 24),
    ("vision-audio", Modality::Vision, Modality::Audio, 16),
    ("text-depth", Modality::Text, Modality::Depth, 32),
    ("vision-thermal", Modality::Vision, Modality::Thermal, 16),
    ("motion-text", Modality::Motion, Modality::Text, 64),
    ("audio-depth", Modality::Audio, Modality::Depth, 32),
];

/// Builds the Multitask-CLIP workload with the first `num_tasks` tasks
/// (1 ≤ `num_tasks` ≤ 10) and the default per-task batch sizes.
///
/// # Errors
///
/// Returns a [`GraphError`] if `num_tasks` is 0 (empty graph).
pub fn multitask_clip(num_tasks: usize) -> Result<ComputationGraph, GraphError> {
    multitask_clip_with_batch(num_tasks, 1.0)
}

/// Builds Multitask-CLIP with every task's batch size scaled by
/// `batch_scale` (values below 1 shrink the workload, useful for fast tests;
/// values above 1 enlarge it).
///
/// # Errors
///
/// Returns a [`GraphError`] if `num_tasks` is 0 or the scaled batch collapses
/// to an invalid shape.
pub fn multitask_clip_with_batch(
    num_tasks: usize,
    batch_scale: f64,
) -> Result<ComputationGraph, GraphError> {
    let num_tasks = num_tasks.min(TASKS.len());
    let mut b = GraphBuilder::new();

    // Shared per-modality encoder parameters: one ParamId per layer, reused by
    // every task that activates the modality (the sub-model sharing approach).
    let mut encoder_params: Vec<Vec<ParamId>> = Vec::with_capacity(ENCODERS.len());
    for spec in &ENCODERS {
        encoder_params.push((0..spec.layers).map(|_| b.new_param()).collect());
    }

    for &(name, ma, mb, batch) in TASKS.iter().take(num_tasks) {
        let batch = ((f64::from(batch) * batch_scale).round() as u32).max(1);
        let task = b.add_task(name, [ma, mb], batch);
        let tower_a = add_tower(&mut b, task, ma, batch, &encoder_params)?;
        let tower_b = add_tower(&mut b, task, mb, batch, &encoder_params)?;
        // The cross-modal module of Multitask-CLIP is a lightweight
        // contrastive loss over pooled features.
        let hidden = ENCODERS
            .iter()
            .find(|e| e.modality == ma)
            .map_or(768, |e| e.hidden);
        let loss = b.add_op(
            task,
            OpKind::ContrastiveLoss,
            TensorShape::new(batch, 1, hidden),
        )?;
        b.add_flow(tower_a, loss)?;
        b.add_flow(tower_b, loss)?;
    }
    b.build()
}

/// Adds one modality tower (encoder chain + projection) for a task, sharing
/// the modality's parameters, and returns the tower's output operator.
fn add_tower(
    b: &mut GraphBuilder,
    task: TaskId,
    modality: Modality,
    batch: u32,
    encoder_params: &[Vec<ParamId>],
) -> Result<spindle_graph::OpId, GraphError> {
    let (idx, spec) = ENCODERS
        .iter()
        .enumerate()
        .find(|(_, e)| e.modality == modality)
        .expect("every task modality has an encoder spec");
    let shape = TensorShape::new(batch, spec.seq, spec.hidden);
    let chain =
        b.add_op_chain_with_params(task, OpKind::Encoder(modality), shape, &encoder_params[idx])?;
    let proj = b.add_op(
        task,
        OpKind::Projection,
        TensorShape::new(batch, 1, spec.hidden),
    )?;
    b.add_flow(*chain.last().expect("encoder chains are non-empty"), proj)?;
    Ok(proj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_task_structure() {
        let g = multitask_clip(4).unwrap();
        assert_eq!(g.tasks().len(), 4);
        // Per task: two encoder chains + two projections + one loss.
        let expected_ops: usize = TASKS
            .iter()
            .take(4)
            .map(|&(_, a, b, _)| layers_of(a) + layers_of(b) + 3)
            .sum();
        assert_eq!(g.num_ops(), expected_ops);
        assert!(g.leaves().len() >= 4);
    }

    fn layers_of(m: Modality) -> usize {
        ENCODERS.iter().find(|e| e.modality == m).unwrap().layers
    }

    #[test]
    fn parameter_count_matches_table_1b() {
        // Tab. 1b: 1.20 B parameters. Shared encoders are counted once no
        // matter how many tasks activate them.
        let g = multitask_clip(10).unwrap();
        let billions = g.total_param_bytes() as f64 / 2.0 / 1e9;
        assert!(
            billions > 0.9 && billions < 1.5,
            "got {billions:.2} B params"
        );
    }

    #[test]
    fn more_tasks_do_not_duplicate_shared_encoders() {
        let g4 = multitask_clip(4).unwrap();
        let g10 = multitask_clip(10).unwrap();
        let p4 = g4.total_param_bytes();
        let p10 = g10.total_param_bytes();
        // 10 tasks activate more encoders than 4 tasks but far fewer than 2.5x.
        assert!(p10 > p4);
        assert!((p10 as f64) < (p4 as f64) * 1.8);
        // FLOPs, in contrast, grow roughly with the number of tasks.
        assert!(g10.total_flops() > 1.8 * g4.total_flops());
    }

    #[test]
    fn tasks_have_heterogeneous_batches_and_modalities() {
        let g = multitask_clip(10).unwrap();
        let batches: Vec<u32> = g.tasks().iter().map(|t| t.batch_size()).collect();
        let mut unique = batches.clone();
        unique.sort_unstable();
        unique.dedup();
        assert!(unique.len() >= 4, "batches should differ across tasks");
        assert!(g.tasks().iter().all(|t| t.modalities().len() == 2));
    }

    #[test]
    fn batch_scale_shrinks_workload() {
        let full = multitask_clip(4).unwrap();
        let small = multitask_clip_with_batch(4, 0.25).unwrap();
        assert!(small.total_flops() < full.total_flops() / 3.0);
        assert_eq!(small.tasks().len(), 4);
    }

    #[test]
    fn task_count_is_clamped() {
        let g = multitask_clip(25).unwrap();
        assert_eq!(g.tasks().len(), 10);
    }

    #[test]
    fn zero_tasks_is_an_error() {
        assert!(multitask_clip(0).is_err());
    }
}
