//! OFASys: a generalist multi-task model with a shared encoder-decoder LM.

use spindle_graph::{
    ComputationGraph, GraphBuilder, GraphError, Modality, OpKind, ParamId, TensorShape,
};

/// Hidden size of the unified encoder-decoder LM.
const LM_HIDDEN: u32 = 1280;
/// Encoder / decoder depth of the unified LM.
const LM_LAYERS: usize = 12;
/// Sequence length processed by the LM (multi-modal tokens + text).
const LM_SEQ: u32 = 512;
/// Depth of the lightweight modality adaptors.
const ADAPTOR_LAYERS: usize = 4;

/// The seven OFASys tasks: (name, input modalities besides text, batch size).
/// Workload heterogeneity comes from the mix of adaptors activated and from
/// the differing batch sizes.
const TASKS: [(&str, &[Modality], u32); 7] = [
    ("text-summarization", &[], 96),
    ("image-captioning", &[Modality::Vision], 48),
    (
        "visual-grounding",
        &[Modality::Vision, Modality::BoundingBox],
        32,
    ),
    ("speech-recognition", &[Modality::Audio], 64),
    ("text-to-sql", &[Modality::Structured], 96),
    ("video-captioning", &[Modality::Video], 16),
    ("visual-question-answering", &[Modality::Vision], 48),
];

/// Builds the OFASys workload with the first `num_tasks` tasks
/// (1 ≤ `num_tasks` ≤ 7).
///
/// Every task runs its modality adaptors, then the shared LM encoder and
/// decoder (same parameters across tasks), and ends in a generative loss —
/// the cross-modal module's workload is comparable to the modality encoders,
/// as the paper notes when explaining DistMM-MT's weakness on this model.
///
/// # Errors
///
/// Returns a [`GraphError`] if `num_tasks` is 0.
pub fn ofasys(num_tasks: usize) -> Result<ComputationGraph, GraphError> {
    let num_tasks = num_tasks.min(TASKS.len());
    let mut b = GraphBuilder::new();

    // Shared LM parameters (encoder + decoder), reused by every task, plus the
    // shared token embedding and output head.
    let lm_encoder_params: Vec<ParamId> = (0..LM_LAYERS).map(|_| b.new_param()).collect();
    let lm_decoder_params: Vec<ParamId> = (0..LM_LAYERS).map(|_| b.new_param()).collect();
    let embedding_param = b.new_param();
    let head_param = b.new_param();
    // Shared per-modality adaptor parameters.
    let mut adaptor_params: Vec<(Modality, Vec<ParamId>)> = Vec::new();

    for &(name, extra_modalities, batch) in TASKS.iter().take(num_tasks) {
        let mut modalities = vec![Modality::Text];
        modalities.extend_from_slice(extra_modalities);
        let task = b.add_task(name, modalities.clone(), batch);

        // Text embedding plus each extra modality's adaptor feed the LM encoder.
        let text_in = b.add_op_with_params(
            task,
            OpKind::Embedding,
            TensorShape::new(batch, 128, LM_HIDDEN),
            &[embedding_param],
        )?;
        let mut inputs = vec![text_in];
        for &m in extra_modalities {
            let params = match adaptor_params.iter().find(|(pm, _)| *pm == m) {
                Some((_, p)) => p.clone(),
                None => {
                    let p: Vec<ParamId> = (0..ADAPTOR_LAYERS).map(|_| b.new_param()).collect();
                    adaptor_params.push((m, p.clone()));
                    p
                }
            };
            let shape = TensorShape::new(batch, m.typical_sequence_length(), 768);
            let chain = b.add_op_chain_with_params(task, OpKind::Adaptor(m), shape, &params)?;
            inputs.push(*chain.last().expect("adaptor chains are non-empty"));
        }

        let lm_shape = TensorShape::new(batch, LM_SEQ, LM_HIDDEN);
        let encoder =
            b.add_op_chain_with_params(task, OpKind::LmEncoder, lm_shape, &lm_encoder_params)?;
        for input in inputs {
            b.add_flow(input, encoder[0])?;
        }
        let decoder =
            b.add_op_chain_with_params(task, OpKind::LmDecoder, lm_shape, &lm_decoder_params)?;
        b.add_flow(
            *encoder.last().expect("lm chains are non-empty"),
            decoder[0],
        )?;
        let loss = b.add_op_with_params(
            task,
            OpKind::GenerativeLoss,
            TensorShape::new(batch, LM_SEQ, LM_HIDDEN),
            &[head_param],
        )?;
        b.add_flow(*decoder.last().expect("lm chains are non-empty"), loss)?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_graph::TaskId;

    #[test]
    fn seven_task_structure() {
        let g = ofasys(7).unwrap();
        assert_eq!(g.tasks().len(), 7);
        assert!(g.num_ops() > 7 * (2 * LM_LAYERS + 2));
        // Every task ends in exactly one generative loss.
        let losses = g
            .ops()
            .iter()
            .filter(|o| o.kind() == OpKind::GenerativeLoss)
            .count();
        assert_eq!(losses, 7);
    }

    #[test]
    fn parameter_count_matches_table_1b() {
        // Tab. 1b: 0.66 B parameters, dominated by the shared LM.
        let g = ofasys(7).unwrap();
        let billions = g.total_param_bytes() as f64 / 2.0 / 1e9;
        assert!(
            billions > 0.4 && billions < 0.9,
            "got {billions:.2} B params"
        );
    }

    #[test]
    fn lm_parameters_are_shared_across_tasks() {
        let g = ofasys(3).unwrap();
        // The LM encoder layers of task 0 and task 1 carry the same ParamIds.
        let lm_ops_t0: Vec<_> = g
            .ops()
            .iter()
            .filter(|o| o.task() == TaskId(0) && o.kind() == OpKind::LmEncoder)
            .collect();
        let lm_ops_t1: Vec<_> = g
            .ops()
            .iter()
            .filter(|o| o.task() == TaskId(1) && o.kind() == OpKind::LmEncoder)
            .collect();
        assert_eq!(lm_ops_t0.len(), LM_LAYERS);
        assert_eq!(lm_ops_t0[0].params(), lm_ops_t1[0].params());
    }

    #[test]
    fn cross_modal_module_is_heavy() {
        // In OFASys the LM (cross-modal module) workload is comparable to or
        // larger than the modality adaptors.
        let g = ofasys(4).unwrap();
        let lm_flops: f64 = g
            .ops()
            .iter()
            .filter(|o| matches!(o.kind(), OpKind::LmEncoder | OpKind::LmDecoder))
            .map(|o| o.flops_total())
            .sum();
        let adaptor_flops: f64 = g
            .ops()
            .iter()
            .filter(|o| matches!(o.kind(), OpKind::Adaptor(_)))
            .map(|o| o.flops_total())
            .sum();
        assert!(lm_flops > adaptor_flops);
    }

    #[test]
    fn task_count_clamped_and_zero_rejected() {
        assert_eq!(ofasys(20).unwrap().tasks().len(), 7);
        assert!(ofasys(0).is_err());
    }
}
