//! Named workload presets and the setup table of the evaluation (Tab. 1b).

use std::fmt;

use spindle_graph::{ComputationGraph, GraphError};

use crate::{multitask_clip, ofasys, qwen_val, QwenValSize};

/// A named workload configuration from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadPreset {
    /// Multitask-CLIP with the given number of tasks (1, 4, 7 or 10 in the
    /// paper).
    MultitaskClip {
        /// Number of contrastive tasks (clamped to 10).
        tasks: usize,
    },
    /// OFASys with the given number of tasks (4 or 7 in the paper).
    Ofasys {
        /// Number of generative tasks (clamped to 7).
        tasks: usize,
    },
    /// QWen-VAL at one of its three sizes, always with 3 tasks.
    QwenVal {
        /// Model size variant.
        size: QwenValSize,
    },
}

impl WorkloadPreset {
    /// Every configuration appearing in Fig. 8 of the paper.
    #[must_use]
    pub fn figure8_presets() -> Vec<WorkloadPreset> {
        vec![
            WorkloadPreset::MultitaskClip { tasks: 4 },
            WorkloadPreset::MultitaskClip { tasks: 7 },
            WorkloadPreset::MultitaskClip { tasks: 10 },
            WorkloadPreset::Ofasys { tasks: 4 },
            WorkloadPreset::Ofasys { tasks: 7 },
            WorkloadPreset::QwenVal {
                size: QwenValSize::B9,
            },
        ]
    }

    /// Builds the preset's computation graph.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if the preset has zero tasks.
    pub fn build(&self) -> Result<ComputationGraph, GraphError> {
        match *self {
            WorkloadPreset::MultitaskClip { tasks } => multitask_clip(tasks),
            WorkloadPreset::Ofasys { tasks } => ofasys(tasks),
            WorkloadPreset::QwenVal { size } => qwen_val(size),
        }
    }

    /// Number of tasks in the preset.
    #[must_use]
    pub fn num_tasks(&self) -> usize {
        match *self {
            WorkloadPreset::MultitaskClip { tasks } => tasks.clamp(1, 10),
            WorkloadPreset::Ofasys { tasks } => tasks.clamp(1, 7),
            WorkloadPreset::QwenVal { .. } => 3,
        }
    }

    /// The cluster sizes (in GPUs) the paper evaluates this preset on.
    #[must_use]
    pub fn paper_cluster_sizes(&self) -> Vec<usize> {
        match self {
            WorkloadPreset::QwenVal {
                size: QwenValSize::B9,
            } => vec![32, 64],
            WorkloadPreset::QwenVal { .. } => vec![256],
            _ => vec![8, 16, 32],
        }
    }

    /// One row of Tab. 1b: (model, #parameters in billions, #modalities,
    /// #tasks, cross-modal module description).
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if the graph cannot be built.
    pub fn table1b_row(&self) -> Result<(String, f64, usize, usize, &'static str), GraphError> {
        let graph = self.build()?;
        let params_b = graph.total_param_bytes() as f64 / 2.0 / 1e9;
        let modalities: std::collections::BTreeSet<_> = graph
            .tasks()
            .iter()
            .flat_map(|t| t.modalities().iter().copied())
            .collect();
        let cross_modal = match self {
            WorkloadPreset::MultitaskClip { .. } => "Contrastive Loss",
            WorkloadPreset::Ofasys { .. } => "Enc-Dec LLM",
            WorkloadPreset::QwenVal { .. } => "Dec-only LLM",
        };
        Ok((
            self.to_string(),
            params_b,
            modalities.len(),
            graph.tasks().len(),
            cross_modal,
        ))
    }
}

impl fmt::Display for WorkloadPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WorkloadPreset::MultitaskClip { tasks } => {
                write!(f, "Multitask-CLIP, {tasks} Tasks")
            }
            WorkloadPreset::Ofasys { tasks } => write!(f, "OFASys, {tasks} Tasks"),
            WorkloadPreset::QwenVal { size } => write!(f, "{}, 3 Tasks", size.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_presets_all_build() {
        for preset in WorkloadPreset::figure8_presets() {
            let graph = preset.build().unwrap();
            assert_eq!(graph.tasks().len(), preset.num_tasks());
            assert!(!preset.paper_cluster_sizes().is_empty());
        }
    }

    #[test]
    fn table1b_matches_paper_shape() {
        let (name, params, modalities, tasks, cm) = WorkloadPreset::MultitaskClip { tasks: 10 }
            .table1b_row()
            .unwrap();
        assert!(name.contains("CLIP"));
        assert!(params > 0.9 && params < 1.5);
        assert_eq!(modalities, 6);
        assert_eq!(tasks, 10);
        assert_eq!(cm, "Contrastive Loss");

        let (_, params, modalities, tasks, cm) = WorkloadPreset::QwenVal {
            size: QwenValSize::B9,
        }
        .table1b_row()
        .unwrap();
        assert!(params > 7.5 && params < 11.5);
        assert_eq!(modalities, 3);
        assert_eq!(tasks, 3);
        assert_eq!(cm, "Dec-only LLM");

        let (_, _, modalities, tasks, cm) =
            WorkloadPreset::Ofasys { tasks: 7 }.table1b_row().unwrap();
        assert!(modalities >= 5);
        assert_eq!(tasks, 7);
        assert_eq!(cm, "Enc-Dec LLM");
    }

    #[test]
    fn display_labels_match_figure_captions() {
        assert_eq!(
            WorkloadPreset::MultitaskClip { tasks: 4 }.to_string(),
            "Multitask-CLIP, 4 Tasks"
        );
        assert_eq!(
            WorkloadPreset::Ofasys { tasks: 7 }.to_string(),
            "OFASys, 7 Tasks"
        );
        assert_eq!(
            WorkloadPreset::QwenVal {
                size: QwenValSize::B9
            }
            .to_string(),
            "QWen-VAL 10B, 3 Tasks"
        );
    }
}
