//! QWen-VAL: vision + audio encoders feeding a shared decoder-only LLM.

use spindle_graph::{
    ComputationGraph, GraphBuilder, GraphError, Modality, OpKind, ParamId, TensorShape,
};

/// Model-size variants of QWen-VAL. `B9` is the 9.25 B-parameter model of
/// Tab. 1b; `B30` and `B70` are the larger variants used by the simulation
/// study of Appendix E (Tab. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QwenValSize {
    /// The 9.25 B-parameter model evaluated on real clusters (Fig. 8).
    #[default]
    B9,
    /// The ~30 B-parameter variant (Appendix E).
    B30,
    /// The ~70 B-parameter variant (Appendix E).
    B70,
}

impl QwenValSize {
    /// LLM depth and hidden size for this variant.
    fn llm_shape(self) -> (usize, u32) {
        match self {
            QwenValSize::B9 => (32, 4096),
            QwenValSize::B30 => (60, 6656),
            QwenValSize::B70 => (80, 8192),
        }
    }

    /// Human-readable label ("QWen-VAL 10B" style, as used in Fig. 8).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            QwenValSize::B9 => "QWen-VAL 10B",
            QwenValSize::B30 => "QWen-VAL 30B",
            QwenValSize::B70 => "QWen-VAL 70B",
        }
    }
}

/// Vision encoder: ViT-bigG-ish (48 layers, 1664 hidden in QWen-VL; rounded).
const VISION_LAYERS: usize = 40;
const VISION_HIDDEN: u32 = 1664;
const VISION_SEQ: u32 = 1024;
/// Audio encoder: Whisper-large-v2-ish (32 layers, 1280 hidden).
const AUDIO_LAYERS: usize = 32;
const AUDIO_HIDDEN: u32 = 1280;
const AUDIO_SEQ: u32 = 1500;
/// LLM sequence length (text + modality tokens).
const LLM_SEQ: u32 = 1024;

/// The three tasks of QWen-VAL: vision-language, audio-language and
/// vision-audio-language.
const TASKS: [(&str, bool, bool, u32); 3] = [
    ("vision-language", true, false, 16),
    ("audio-language", false, true, 16),
    ("vision-audio-language", true, true, 8),
];

/// Builds the QWen-VAL workload at the requested size.
///
/// The decoder-only LLM (the cross-modal module) dominates the computation,
/// which is the regime where the paper reports Spindle's largest-model
/// results; its parameters are shared across all three tasks.
///
/// # Errors
///
/// Returns a [`GraphError`] if graph assembly fails (it does not for the
/// built-in configurations).
pub fn qwen_val(size: QwenValSize) -> Result<ComputationGraph, GraphError> {
    let (llm_layers, llm_hidden) = size.llm_shape();
    let mut b = GraphBuilder::new();

    let llm_params: Vec<ParamId> = (0..llm_layers).map(|_| b.new_param()).collect();
    let vision_params: Vec<ParamId> = (0..VISION_LAYERS).map(|_| b.new_param()).collect();
    let audio_params: Vec<ParamId> = (0..AUDIO_LAYERS).map(|_| b.new_param()).collect();

    for &(name, vision, audio, batch) in &TASKS {
        let mut modalities = vec![Modality::Text];
        if vision {
            modalities.push(Modality::Vision);
        }
        if audio {
            modalities.push(Modality::Audio);
        }
        let task = b.add_task(name, modalities, batch);

        let embed = b.add_op(
            task,
            OpKind::Embedding,
            TensorShape::new(batch, LLM_SEQ, llm_hidden),
        )?;
        let mut inputs = vec![embed];
        if vision {
            let chain = b.add_op_chain_with_params(
                task,
                OpKind::Encoder(Modality::Vision),
                TensorShape::new(batch, VISION_SEQ, VISION_HIDDEN),
                &vision_params,
            )?;
            let proj = b.add_op(
                task,
                OpKind::Projection,
                TensorShape::new(batch, 256, llm_hidden),
            )?;
            b.add_flow(*chain.last().expect("vision chain non-empty"), proj)?;
            inputs.push(proj);
        }
        if audio {
            let chain = b.add_op_chain_with_params(
                task,
                OpKind::Encoder(Modality::Audio),
                TensorShape::new(batch, AUDIO_SEQ, AUDIO_HIDDEN),
                &audio_params,
            )?;
            let proj = b.add_op(
                task,
                OpKind::Projection,
                TensorShape::new(batch, 256, llm_hidden),
            )?;
            b.add_flow(*chain.last().expect("audio chain non-empty"), proj)?;
            inputs.push(proj);
        }

        let llm = b.add_op_chain_with_params(
            task,
            OpKind::LmDecoderOnly,
            TensorShape::new(batch, LLM_SEQ, llm_hidden),
            &llm_params,
        )?;
        for input in inputs {
            b.add_flow(input, llm[0])?;
        }
        let loss = b.add_op(
            task,
            OpKind::GenerativeLoss,
            TensorShape::new(batch, LLM_SEQ, llm_hidden),
        )?;
        b.add_flow(*llm.last().expect("llm chain non-empty"), loss)?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_matches_table_1b() {
        // Tab. 1b: 9.25 B parameters for the base model.
        let g = qwen_val(QwenValSize::B9).unwrap();
        let billions = g.total_param_bytes() as f64 / 2.0 / 1e9;
        assert!(
            billions > 7.5 && billions < 11.5,
            "got {billions:.2} B params"
        );
    }

    #[test]
    fn larger_variants_scale_parameters() {
        let b9 = qwen_val(QwenValSize::B9).unwrap().total_param_bytes() as f64 / 2e9;
        let b30 = qwen_val(QwenValSize::B30).unwrap().total_param_bytes() as f64 / 2e9;
        let b70 = qwen_val(QwenValSize::B70).unwrap().total_param_bytes() as f64 / 2e9;
        assert!(b30 > 25.0 && b30 < 40.0, "30B variant got {b30:.1}");
        assert!(b70 > 58.0 && b70 < 85.0, "70B variant got {b70:.1}");
        assert!(b9 < b30 && b30 < b70);
    }

    #[test]
    fn three_tasks_with_expected_modalities() {
        let g = qwen_val(QwenValSize::B9).unwrap();
        assert_eq!(g.tasks().len(), 3);
        assert!(g.tasks()[0].uses_modality(Modality::Vision));
        assert!(g.tasks()[1].uses_modality(Modality::Audio));
        assert!(g.tasks()[2].uses_modality(Modality::Vision));
        assert!(g.tasks()[2].uses_modality(Modality::Audio));
    }

    #[test]
    fn cross_modal_module_dominates_compute() {
        // The decoder-only LLM is heavier than the modality encoders, the
        // defining trait of this workload class (Tab. 1b discussion).
        let g = qwen_val(QwenValSize::B9).unwrap();
        let llm: f64 = g
            .ops()
            .iter()
            .filter(|o| o.kind() == OpKind::LmDecoderOnly)
            .map(|o| o.flops_total())
            .sum();
        let encoders: f64 = g
            .ops()
            .iter()
            .filter(|o| matches!(o.kind(), OpKind::Encoder(_)))
            .map(|o| o.flops_total())
            .sum();
        assert!(llm > encoders);
    }

    #[test]
    fn llm_parameters_shared_across_tasks() {
        let g = qwen_val(QwenValSize::B9).unwrap();
        let first_llm_per_task: Vec<_> = g
            .tasks()
            .iter()
            .map(|t| {
                g.ops()
                    .iter()
                    .find(|o| o.task() == t.id() && o.kind() == OpKind::LmDecoderOnly)
                    .unwrap()
            })
            .collect();
        assert_eq!(
            first_llm_per_task[0].params(),
            first_llm_per_task[1].params()
        );
        assert_eq!(
            first_llm_per_task[1].params(),
            first_llm_per_task[2].params()
        );
    }

    #[test]
    fn size_labels() {
        assert_eq!(QwenValSize::B9.label(), "QWen-VAL 10B");
        assert_eq!(QwenValSize::B30.label(), "QWen-VAL 30B");
        assert_eq!(QwenValSize::B70.label(), "QWen-VAL 70B");
        assert_eq!(QwenValSize::default(), QwenValSize::B9);
    }
}
