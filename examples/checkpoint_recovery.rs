//! Checkpoint cadence vs. recovery cost: the classic U-curve, priced.
//!
//! A Multitask-CLIP arrival schedule is overlaid with whole-node losses —
//! the fault that strands MetaOps with *zero* surviving replicas — and
//! driven through [`DynamicRunLoop`] on a cluster with a burst-buffer
//! checkpoint tier. Sweeping the checkpoint cadence at two fault rates
//! splits the churn overhead into its four components:
//!
//! * **write** — steady-state checkpoint writes, charged at the cadence
//!   through the contended storage model (sync stall here; pass
//!   `async_overlap` to charge only the induced slowdown);
//! * **migration** — parameter moves from surviving replicas over the
//!   compute fabric;
//! * **restore** — storage reads for MetaOps whose every replica died;
//! * **replay** — in-flight work lost to the fault plus the iterations done
//!   since the last checkpoint, re-executed at the post-fault rate.
//!
//! Frequent checkpoints pay in writes, rare ones pay in replay: the total
//! is U-shaped in the cadence, and the minimum shifts toward more frequent
//! checkpoints as faults get more frequent.
//!
//! ```bash
//! cargo run --release --example checkpoint_recovery
//! ```

use spindle::cluster::StorageSpec;
use spindle::prelude::*;
use spindle::runtime::{CheckpointPolicy, DynamicRunLoop, SimConfig};
use spindle::workloads::{ArrivalSchedule, DeviceChurnEvent, DeviceChurnKind};

/// One swept cell: overhead split of a full dynamic run.
struct Cell {
    cadence: Option<u32>,
    write_s: f64,
    migration_s: f64,
    restore_s: f64,
    replay_s: f64,
}

impl Cell {
    fn total(&self) -> f64 {
        self.write_s + self.migration_s + self.restore_s + self.replay_s
    }

    fn label(&self) -> String {
        self.cadence
            .map_or_else(|| "off".to_string(), |k| format!("every {k}"))
    }
}

/// `cycles` loss/restore pairs of the whole second node, spread over the
/// horizon: the fault every checkpoint exists for.
fn node_loss_cycles(horizon_s: f64, cycles: usize) -> Vec<DeviceChurnEvent> {
    let node1: Vec<u32> = (4..8).collect();
    let mut events = Vec::with_capacity(cycles * 2);
    for i in 0..cycles {
        let slot = horizon_s * (0.15 + 0.80 * i as f64 / cycles as f64);
        events.push(DeviceChurnEvent {
            at_s: slot,
            kind: DeviceChurnKind::Remove,
            devices: node1.clone(),
            label: format!("node 1 lost (cycle {i})"),
        });
        events.push(DeviceChurnEvent {
            at_s: slot + horizon_s * 0.40 / cycles as f64,
            kind: DeviceChurnKind::Restore,
            devices: node1.clone(),
            label: format!("node 1 back (cycle {i})"),
        });
    }
    events
}

fn run_cell(
    schedule: &ArrivalSchedule,
    cluster: &ClusterSpec,
    cadence: Option<u32>,
) -> Result<Cell, Box<dyn std::error::Error>> {
    let policy = cadence.map_or_else(CheckpointPolicy::default, CheckpointPolicy::every);
    let mut session = SpindleSession::new(cluster.clone());
    let report = DynamicRunLoop::new(&mut session)
        .with_sim_config(SimConfig::contended())
        .with_checkpoint_policy(policy)
        .run(schedule)?;
    Ok(Cell {
        cadence,
        write_s: report.checkpoint_write_s(),
        migration_s: report.migration_s(),
        restore_s: report.restore_s(),
        replay_s: report.replay_s(),
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two NVLink islands of 4 GPUs: losing one island takes every replica of
    // the MetaOps it exclusively hosted, which is exactly what checkpoints
    // are for. The storage tier is a burst buffer — 8x the default NVMe
    // bandwidth — so synchronous writes are painful but not ruinous and the
    // cadence trade-off has an interior optimum.
    let cluster = ClusterSpec::homogeneous(2, 4).with_storage(StorageSpec {
        node_bandwidth: 64e9,
        spine_bandwidth: 256e9,
        latency_s: 2e-3,
    });
    let cadences: [Option<u32>; 7] = [
        None,
        Some(4),
        Some(16),
        Some(64),
        Some(256),
        Some(1024),
        Some(4096),
    ];

    for (label, cycles) in [("light faults", 1usize), ("heavy faults", 3)] {
        let base = ArrivalSchedule::multitask_clip_arrivals(5, 3, 45.0)?;
        let schedule = base
            .clone()
            .with_device_churn(node_loss_cycles(base.horizon_s(), cycles));
        println!(
            "== {label}: {} on {cluster}, {} topology changes ==",
            schedule.name(),
            schedule.num_topology_changes()
        );
        println!(
            "{:<11} {:>10} {:>10} {:>10} {:>10} {:>12}",
            "cadence", "write", "migration", "restore", "replay", "total"
        );
        let mut cells = Vec::new();
        for &cadence in &cadences {
            let cell = run_cell(&schedule, &cluster, cadence)?;
            println!(
                "{:<11} {:>8.3}s {:>8.3}s {:>8.3}s {:>8.3}s {:>10.3}s",
                cell.label(),
                cell.write_s,
                cell.migration_s,
                cell.restore_s,
                cell.replay_s,
                cell.total()
            );
            cells.push(cell);
        }
        // The sweep's shape: every checkpointed run restores the stranded
        // shards from storage, the write charge falls monotonically as
        // checkpoints get rarer, and the cheapest cadence is an interior
        // trade-off, not a degenerate extreme.
        assert!(
            cells.iter().skip(1).all(|c| c.restore_s > 0.0),
            "whole-node loss must price storage restores at every cadence"
        );
        let writes: Vec<f64> = cells.iter().skip(1).map(|c| c.write_s).collect();
        assert!(
            writes.windows(2).all(|w| w[1] <= w[0] + 1e-9),
            "write charge must fall as checkpoints get rarer: {writes:?}"
        );
        let best = cells
            .iter()
            .skip(1)
            .min_by(|a, b| a.total().total_cmp(&b.total()))
            .expect("swept at least one cadence");
        let k = best.cadence.expect("checkpointed cell");
        assert!(
            (4..4096).contains(&k),
            "the U-curve's minimum must be interior, not a swept extreme (got every {k})"
        );
        println!(
            "best cadence: {} ({:.3}s total recovery overhead)\n",
            best.label(),
            best.total()
        );
    }
    Ok(())
}
