//! Dynamic multi-task training (paper Appendix D): the active task set changes
//! as tasks join and finish; Spindle re-plans at every change and keeps the
//! cumulative training time lowest.
//!
//! ```bash
//! cargo run --release --example dynamic_task_mix
//! ```

use spindle::baselines::{BaselineSystem, SystemKind};
use spindle::prelude::*;
use spindle::workloads::DynamicWorkload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schedule = DynamicWorkload::multitask_clip_schedule()?;
    let cluster = ClusterSpec::homogeneous(2, 8);
    println!(
        "dynamic workload: {} — {} iterations over {} phases\n",
        schedule.name(),
        schedule.total_iterations(),
        schedule.phases().len()
    );

    for kind in [SystemKind::DeepSpeed, SystemKind::SpindleOptimus, SystemKind::Spindle] {
        let mut cumulative_s = 0.0;
        println!("== {kind} ==");
        for phase in schedule.phases() {
            let plan = BaselineSystem::new(kind).plan(&phase.graph, &cluster)?;
            let report = RuntimeEngine::new(&plan, &cluster)
                .with_graph(&phase.graph)
                .run_iteration()?;
            // Each phase re-plans once, then trains for `iterations` steps.
            cumulative_s += plan.planning_time().as_secs_f64();
            cumulative_s += report.iteration_time_s() * phase.iterations as f64;
            println!(
                "  {:32} {:>7.1} ms/iter, cumulative {:>8.1} x10^3 s",
                phase.label,
                report.iteration_time_ms(),
                cumulative_s / 1e3
            );
        }
        println!();
    }
    Ok(())
}
