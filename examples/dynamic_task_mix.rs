//! Dynamic multi-task training (paper Appendix D): the active task set changes
//! as tasks join and finish; the system re-plans at every change.
//!
//! Each system keeps one long-lived [`SpindleSession`] across the whole run,
//! so re-planning a new phase reuses every scaling curve fitted in earlier
//! phases — after phase 1, phases whose operator signatures were all seen
//! before perform zero new curve fits and re-plan markedly faster.
//!
//! ```bash
//! cargo run --release --example dynamic_task_mix
//! ```

use spindle::baselines::SystemKind;
use spindle::prelude::*;
use spindle::workloads::DynamicWorkload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schedule = DynamicWorkload::multitask_clip_schedule()?;
    let cluster = ClusterSpec::homogeneous(2, 8);
    println!(
        "dynamic workload: {} — {} iterations over {} phases\n",
        schedule.name(),
        schedule.total_iterations(),
        schedule.phases().len()
    );

    for kind in [
        SystemKind::DeepSpeed,
        SystemKind::SpindleOptimus,
        SystemKind::Spindle,
    ] {
        // One owned session per system: the curve cache persists across every
        // phase's re-plan.
        let mut session = SpindleSession::new(cluster.clone());
        let mut system = kind.planning_system();
        let mut cumulative_s = 0.0;
        println!("== {kind} ==");
        for phase in schedule.phases() {
            let fits_before = session.curve_fits();
            let plan = system.plan(&phase.graph, &mut session)?;
            let new_fits = session.curve_fits() - fits_before;
            let report = RuntimeEngine::new(&plan, session.cluster())
                .with_graph(&phase.graph)
                .run_iteration()?;
            // Each phase re-plans once, then trains for `iterations` steps.
            cumulative_s += plan.planning_time().as_secs_f64();
            cumulative_s += report.iteration_time_s() * phase.iterations as f64;
            println!(
                "  {:32} {:>7.1} ms/iter, re-plan {:>7.1} ms ({:>2} new curve fits), cumulative {:>8.1} x10^3 s",
                phase.label,
                report.iteration_time_ms(),
                plan.planning_time().as_secs_f64() * 1e3,
                new_fits,
                cumulative_s / 1e3
            );
        }
        let stats = session.cache_stats();
        println!(
            "  curve cache: {} entries, {} fits, {} hits ({:.0}% hit rate)\n",
            stats.entries,
            stats.fits,
            stats.hits,
            stats.hit_rate() * 100.0
        );
    }
    Ok(())
}
