//! Elastic clusters: seeded device churn through the dynamic run loop.
//!
//! A Multitask-CLIP arrival schedule is overlaid with a seeded device-churn
//! trace — node losses, GPU-range failures, preemption windows that return
//! their devices, explicit restores — and driven end to end through
//! [`DynamicRunLoop`] on a contended simulator. Every removal fault-injects
//! into the in-flight simulated wave (discarding the work the dead devices
//! were doing), re-plans the active task mix onto the survivors with the
//! clean level prefix keeping its placements, prices the parameter migration
//! through the simulator's link-contention model, and resumes. The run never
//! places work on a dead device and never crashes: graceful degradation, in
//! one table.
//!
//! ```bash
//! cargo run --release --example elastic_churn
//! ```

use spindle::prelude::*;
use spindle::runtime::{DynamicRunLoop, SimConfig};
use spindle::workloads::ArrivalSchedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = ClusterSpec::homogeneous(2, 8); // 16 GPUs, 2 NVLink islands
    let num_devices = cluster.num_devices() as u32;
    let schedule = ArrivalSchedule::multitask_clip_arrivals(5, 4, 60.0)?.with_seeded_device_churn(
        17,
        num_devices,
        8,
    );
    println!(
        "== {} on {cluster}: {} phases, {} topology changes ==\n",
        schedule.name(),
        schedule.arrivals().len(),
        schedule.num_topology_changes()
    );

    let mut session = SpindleSession::new(cluster);
    let report = DynamicRunLoop::new(&mut session)
        .with_sim_config(SimConfig::contended())
        .run(&schedule)?;

    println!(
        "{:<44} {:>4} {:>5} {:>9} {:>11} {:>10} {:>9} {:>9}",
        "event", "lost", "lvls", "replan", "migrated", "mig-time", "wasted", "iter"
    );
    for c in &report.churn {
        println!(
            "{:<44} {:>4} {:>2}/{:<2} {:>7.2}ms {:>8}MiB {:>8.2}ms {:>7.2}ms {:>7.2}ms",
            format!("t={:.1}s {}", c.at_s, c.label),
            c.devices_lost,
            c.levels_replaced,
            c.levels_total,
            c.replan_ms,
            c.migration_bytes >> 20,
            c.sim_migration_s * 1e3,
            c.wasted_compute_s * 1e3,
            c.iteration_after_s * 1e3,
        );
    }

    println!("\n{report}");
    println!(
        "churn overhead: {:.3}s (wasted in-flight compute + contended migration)",
        report.churn_overhead_s()
    );
    assert!(
        session.removed_devices().len() < num_devices as usize,
        "the cluster always keeps survivors"
    );
    Ok(())
}
