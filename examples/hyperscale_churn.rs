//! Hyperscale dynamic churn: incremental delta re-planning at a scale where
//! full re-planning visibly hurts.
//!
//! 48 heterogeneous tasks (deep adaptor→encoder→projection→loss pipelines
//! interleaved with shallow encoder→loss towers) train on 256 simulated
//! GPUs while a seeded churn trace arrives and departs one task at a time.
//! At every task-mix change the long-lived session re-plans online; the
//! structural plan cache splices cached level schedules for the levels each
//! event did not touch and reuses whole placed plans when a task mix recurs,
//! so re-planning cost collapses from milliseconds to tens of microseconds —
//! while producing plans bit-identical to planning from scratch.
//!
//! ```bash
//! cargo run --release --example hyperscale_churn
//! ```

use spindle::prelude::*;
use spindle::runtime::DynamicRunLoop;
use spindle::workloads::{hyperscale_churn, HYPERSCALE_DEFAULT_TASKS};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = ClusterSpec::homogeneous(32, 8); // 256 GPUs
    let schedule = hyperscale_churn(0xC0FFEE, HYPERSCALE_DEFAULT_TASKS, 10, 120.0)?;
    println!(
        "== {} on {cluster}: {} phases, {} online re-plans ==\n",
        schedule.name(),
        schedule.arrivals().len(),
        schedule.num_replans()
    );

    let mut session = SpindleSession::new(cluster);
    let report = DynamicRunLoop::new(&mut session).run(&schedule)?;

    println!(
        "{:<26} {:>10} {:>9} {:>13} {:>9} {:>10}",
        "phase", "replan", "levels", "reused", "placed", "sim/iter"
    );
    for phase in &report.phases {
        println!(
            "{:<26} {:>8.2}ms {:>9} {:>9}/{:<3} {:>9} {:>8.1}ms",
            phase.label,
            phase.replan_ms,
            phase.levels_total,
            phase.levels_reused,
            phase.levels_total,
            if phase.placement_reused {
                "reused"
            } else {
                "fresh"
            },
            phase.sim_iteration_s * 1e3,
        );
    }

    println!("\n{report}");
    let stats = session.structural_cache_stats();
    println!(
        "structural cache: {} level artifacts, {} placed skeletons, \
         {} level hits, {} skeleton hits",
        stats.level_entries, stats.skeleton_entries, stats.level_hits, stats.skeleton_hits
    );
    println!(
        "curve cache: {} curves, {} fits over the whole run ({} plans)",
        session.cached_curves(),
        session.curve_fits(),
        session.plans_produced()
    );
    Ok(())
}
