//! Case study (paper §5.3): plan and simulate the 4-task Multitask-CLIP
//! workload on 16 GPUs with Spindle and with the decoupled DeepSpeed-style
//! strategy, and compare utilization, memory balance and time breakdown.
//!
//! ```bash
//! cargo run --release --example multitask_clip_case_study
//! ```

use spindle::baselines::SystemKind;
use spindle::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = multitask_clip(4)?;
    // One session shared by all four systems: every system profiles operators
    // through the same curve cache, so they are compared on equal footing.
    let mut session = SpindleSession::new(ClusterSpec::homogeneous(2, 8));
    println!("workload: {graph}");
    println!("cluster:  {}\n", session.cluster());

    let mut reference_ms = None;
    for kind in [
        SystemKind::DeepSpeed,
        SystemKind::DistMmMt,
        SystemKind::SpindleOptimus,
        SystemKind::Spindle,
    ] {
        let plan = kind.planning_system().plan(&graph, &mut session)?;
        let report = RuntimeEngine::new(&plan, session.cluster())
            .with_graph(&graph)
            .run_iteration()?;
        let breakdown = report.breakdown();
        let speedup = reference_ms
            .map(|r: f64| r / report.iteration_time_ms())
            .unwrap_or(1.0);
        if reference_ms.is_none() {
            reference_ms = Some(report.iteration_time_ms());
        }
        println!("== {kind} ==");
        println!(
            "  iteration {:.1} ms ({speedup:.2}x vs DeepSpeed), {} waves",
            report.iteration_time_ms(),
            plan.num_waves()
        );
        println!(
            "  fwd+bwd {:.1} ms | sync {:.1} ms | send/recv {:.1} ms",
            breakdown.fwd_bwd_s * 1e3,
            breakdown.sync_s * 1e3,
            breakdown.send_recv_s * 1e3
        );
        println!(
            "  avg cluster utilization {:.0}%, memory imbalance {:.2}x",
            report.average_utilization() * 100.0,
            report.memory_imbalance()
        );
        // A 10-bucket sparkline of the utilization-over-time trace (Fig. 9a).
        let trace = report.utilization_trace();
        let buckets = 10;
        let spark: String = (0..buckets)
            .map(|b| {
                let lo = b * trace.len() / buckets;
                let hi = ((b + 1) * trace.len() / buckets).max(lo + 1);
                let avg: f64 =
                    trace[lo..hi].iter().map(|s| s.tflops_per_s).sum::<f64>() / (hi - lo) as f64;
                match (avg / 1000.0 * 8.0).round() as u32 {
                    0 => ' ',
                    1 => '.',
                    2 => ':',
                    3 => '-',
                    4 => '=',
                    5 => '+',
                    6 => '*',
                    7 => '#',
                    _ => '@',
                }
            })
            .collect();
        println!("  utilization over time: [{spark}]\n");
    }
    Ok(())
}
