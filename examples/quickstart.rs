//! Quickstart: define a small multi-task multi-modal workload, plan it with
//! Spindle, and simulate one training iteration.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use spindle::prelude::*;
use spindle_graph::GraphBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the workload: two contrastive tasks sharing nothing, one
    //    audio-text and one vision-text, with different batch sizes — the
    //    minimal example of inter-task workload heterogeneity.
    let mut builder = GraphBuilder::new();
    for (name, modality, seq, hidden, batch, layers) in [
        (
            "audio-text",
            Modality::Audio,
            229u32,
            768u32,
            32u32,
            12usize,
        ),
        ("vision-text", Modality::Vision, 257, 1280, 16, 32),
    ] {
        let task = builder.add_task(name, [modality, Modality::Text], batch);
        let tower = builder.add_op_chain(
            task,
            OpKind::Encoder(modality),
            spindle_graph::TensorShape::new(batch, seq, hidden),
            layers,
        )?;
        let text = builder.add_op_chain(
            task,
            OpKind::Encoder(Modality::Text),
            spindle_graph::TensorShape::new(batch, 77, 1024),
            24,
        )?;
        let loss = builder.add_op(
            task,
            OpKind::ContrastiveLoss,
            spindle_graph::TensorShape::new(batch, 1, hidden),
        )?;
        builder.add_flow(*tower.last().unwrap(), loss)?;
        builder.add_flow(*text.last().unwrap(), loss)?;
    }
    let graph = builder.build()?;
    println!("workload: {graph}");

    // 2. Open a planning session on the cluster: two nodes of eight A800-like
    //    GPUs. The session owns the estimator and its curve cache, so any
    //    further plans reuse the profiling work done here.
    let mut session = SpindleSession::new(ClusterSpec::homogeneous(2, 8));
    println!("cluster:  {}", session.cluster());

    // 3. Plan: graph contraction, scalability estimation, MPSP allocation,
    //    wavefront scheduling and device placement.
    let plan = session.plan(&graph)?;
    println!("plan:     {plan}");
    println!(
        "          theoretical optimum {:.1} ms, planned in {:.1} ms",
        plan.theoretical_optimum() * 1e3,
        plan.planning_time().as_secs_f64() * 1e3
    );
    for wave in plan.waves().iter().take(4) {
        println!(
            "          wave {:>2}: {:>5.2} ms, {} sliced MetaOps on {} devices",
            wave.index,
            wave.duration * 1e3,
            wave.entries.len(),
            wave.devices_used()
        );
    }

    // 4. Simulate one training iteration and read the paper's metrics.
    let report = RuntimeEngine::new(&plan, session.cluster())
        .with_graph(&graph)
        .run_iteration()?;
    let breakdown = report.breakdown();
    println!("iteration: {:.1} ms", report.iteration_time_ms());
    println!(
        "           fwd+bwd {:.1} ms | param sync {:.1} ms | send/recv {:.1} ms",
        breakdown.fwd_bwd_s * 1e3,
        breakdown.sync_s * 1e3,
        breakdown.send_recv_s * 1e3
    );
    println!(
        "           average cluster utilization {:.0}%",
        report.average_utilization() * 100.0
    );
    Ok(())
}
