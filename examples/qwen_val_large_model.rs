//! Planning a large decoder-only multi-modal model: QWen-VAL (9B/30B/70B)
//! across cluster sizes, reporting how Spindle's advantage over decoupled
//! execution grows with model and cluster scale (paper Fig. 8 right column and
//! Tab. 2).
//!
//! ```bash
//! cargo run --release --example qwen_val_large_model
//! ```

use spindle::baselines::SystemKind;
use spindle::prelude::*;
use spindle::workloads::QwenValSize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (size, gpus) in [
        (QwenValSize::B9, 32usize),
        (QwenValSize::B9, 64),
        (QwenValSize::B30, 256),
    ] {
        let graph = qwen_val(size)?;
        let mut session = SpindleSession::new(ClusterSpec::homogeneous(gpus / 8, 8));
        println!(
            "== {} on {} GPUs ({:.1}B parameters) ==",
            size.label(),
            gpus,
            graph.total_param_bytes() as f64 / 2e9
        );
        let mut deepspeed_ms = None;
        for kind in [
            SystemKind::DeepSpeed,
            SystemKind::SpindleOptimus,
            SystemKind::Spindle,
        ] {
            let plan = kind.planning_system().plan(&graph, &mut session)?;
            let report = RuntimeEngine::new(&plan, session.cluster())
                .with_graph(&graph)
                .run_iteration()?;
            let ms = report.iteration_time_ms();
            let speedup = deepspeed_ms.map(|d: f64| d / ms).unwrap_or(1.0);
            if deepspeed_ms.is_none() {
                deepspeed_ms = Some(ms);
            }
            println!(
                "  {:16} iteration {:8.1} ms  ({:.2}x vs DeepSpeed), planner {:.2} s",
                kind.label(),
                ms,
                speedup,
                plan.planning_time().as_secs_f64()
            );
        }
        println!();
    }
    Ok(())
}
