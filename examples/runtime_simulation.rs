//! Event-driven runtime simulation: link contention, stragglers,
//! heterogeneous GPUs, and online re-planning under task arrivals.
//!
//! Part 1 cross-checks the discrete-event simulator against the closed-form
//! analytical engine (contention-free runs match within 1%), then turns on
//! the effects the closed-form model cannot express: overlapped flows with
//! link contention, a straggling GPU, and a slow second node.
//!
//! Part 2 runs a dynamic task-arrival schedule through the online
//! re-planning loop: tasks join and finish at simulated timestamps, the
//! long-lived session re-plans at every change (warm curve cache), and the
//! report shows the per-phase plan-vs-simulated gap and the warm-cache hit
//! rate.
//!
//! ```bash
//! cargo run --release --example runtime_simulation
//! ```

use std::collections::BTreeMap;

use spindle::prelude::*;
use spindle::runtime::{CommMode, DynamicRunLoop, SimConfig, Simulator, Straggler};
use spindle::workloads::ArrivalSchedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = ClusterSpec::homogeneous(2, 8);
    let graph = multitask_clip(4)?;
    let mut session = SpindleSession::new(cluster.clone());
    let plan = session.plan(&graph)?;

    println!("== simulating Multitask-CLIP (4 tasks) on {cluster} ==\n");
    let analytical = RuntimeEngine::new(&plan, &cluster)
        .with_graph(&graph)
        .run_iteration()?;
    println!(
        "analytical engine:        {:>8.2} ms/iter",
        analytical.iteration_time_ms()
    );

    // Contention-free, serialized flows: the event-driven timeline reproduces
    // the closed-form model (the cross-check oracle).
    let oracle = Simulator::new(&plan, &cluster)
        .with_graph(&graph)
        .run_iteration()?;
    println!(
        "simulator (oracle mode):  {:>8.2} ms/iter  (gap {:+.3}%, {} events)",
        oracle.total_ms(),
        oracle.gap_vs(analytical.iteration_time_s()) * 100.0,
        oracle.event_log().len()
    );

    // Overlapped flows sharing links: boundary transmissions and parameter
    // syncs contend instead of queueing politely.
    let contended = Simulator::new(&plan, &cluster)
        .with_graph(&graph)
        .with_config(SimConfig::contended())
        .run_iteration()?;
    println!(
        "simulator (contended):    {:>8.2} ms/iter  (gap {:+.3}%)",
        contended.total_ms(),
        contended.gap_vs(analytical.iteration_time_s()) * 100.0
    );

    // A straggling GPU: gpu3 runs 2.5x slower for the whole iteration.
    let straggling = Simulator::new(&plan, &cluster)
        .with_graph(&graph)
        .with_config(SimConfig {
            stragglers: vec![Straggler::persistent(DeviceId(3), 2.5)],
            ..SimConfig::contended()
        })
        .run_iteration()?;
    println!(
        "simulator (gpu3 straggles 2.5x): {:>8.2} ms/iter  ({:+.1}% vs contended)",
        straggling.total_ms(),
        (straggling.total_s() / contended.total_s() - 1.0) * 100.0
    );

    // A heterogeneous cluster: the second node's GPUs are a slower SKU.
    let speed_factors: BTreeMap<DeviceId, f64> = (8..16).map(|d| (DeviceId(d), 0.75)).collect();
    let hetero = Simulator::new(&plan, &cluster)
        .with_graph(&graph)
        .with_config(SimConfig {
            speed_factors,
            compute_jitter: 0.03,
            seed: 1,
            ..SimConfig::contended()
        })
        .run_iteration()?;
    println!(
        "simulator (node1 at 75% + 3% jitter): {:>5.2} ms/iter  ({:+.1}% vs contended)",
        hetero.total_ms(),
        (hetero.total_s() / contended.total_s() - 1.0) * 100.0
    );
    let busy = hetero.device_busy_s();
    let (min_busy, max_busy) = busy.values().fold((f64::INFINITY, 0.0f64), |(lo, hi), &b| {
        (lo.min(b), hi.max(b))
    });
    println!(
        "  per-device busy time: {:.2}..{:.2} ms (imbalance {:.2}x)\n",
        min_busy * 1e3,
        max_busy * 1e3,
        max_busy / min_busy.max(1e-12)
    );

    // -- Part 2: online re-planning under a seeded task-arrival process ------
    let schedule = ArrivalSchedule::multitask_clip_arrivals(17, 5, 120.0)?;
    println!(
        "== dynamic run: {} ({} phases, {} online re-plans, horizon {:.0} s) ==\n",
        schedule.name(),
        schedule.arrivals().len(),
        schedule.num_replans(),
        schedule.horizon_s()
    );
    let report = DynamicRunLoop::new(&mut session)
        .with_sim_config(SimConfig {
            comm_mode: CommMode::Overlapped,
            contention: true,
            ..SimConfig::default()
        })
        .run(&schedule)?;
    println!(
        "{:<10} {:>9} {:>11} {:>10} {:>11} {:>11} {:>8}",
        "phase", "arrival", "re-plan", "new fits", "sim/iter", "gap", "iters"
    );
    for phase in &report.phases {
        println!(
            "{:<10} {:>7.0} s {:>8.2} ms {:>10} {:>8.2} ms {:>10.2}% {:>8}",
            phase.label,
            phase.arrival_s,
            phase.replan_ms,
            if phase.warm {
                "warm".to_string()
            } else {
                phase.new_curve_fits.to_string()
            },
            phase.sim_iteration_s * 1e3,
            phase.gap * 100.0,
            phase.iterations
        );
    }
    println!("\n{report}");
    Ok(())
}
