//! Planning as a network service: the TCP ingress end to end.
//!
//! Binds a [`TcpIngress`] on loopback, connects a [`TcpClient`] and drives a
//! small multi-tenant trace — one deliberately chatty, rate-limited tenant
//! included — through the versioned wire protocol. Everything crosses a real
//! socket: hello/version negotiation, length-prefixed frames, per-tenant
//! admission control, streamed plan completions and the final stats frame of
//! the shutdown handshake.
//!
//! ```bash
//! cargo run --release --example tcp_ingress
//! ```

use std::collections::HashMap;
use std::time::Duration;

use spindle::prelude::*;
use spindle::service::{
    FairnessConfig, ServiceApi, ServiceConfig, SubmitError, TcpClient, TcpIngress, TenantPolicy,
};
use spindle::workloads::TenantFleet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = ClusterSpec::homogeneous(2, 8); // 16 GPUs, 2 NVLink islands

    // Tenant 0 is chatty (10x the event rate) and rate-limited to 4 requests
    // of burst with a slow refill; everyone else is unlimited.
    let fleet = TenantFleet::chatty_clip_fleet(23, 6, 3, 45.0, 10)?;
    let chatty_policy = TenantPolicy {
        rate: 1.0,
        burst: 4.0,
        ..TenantPolicy::unlimited()
    };
    let config = ServiceConfig {
        workers: 2,
        queue_depth: 64,
        fairness: FairnessConfig {
            overrides: HashMap::from([(0u64, chatty_policy)]),
            ..FairnessConfig::default()
        },
        ..ServiceConfig::default()
    };

    let ingress = TcpIngress::bind("127.0.0.1:0", cluster, config)?;
    println!(
        "== {} over tcp://{} ==\n",
        fleet.name(),
        ingress.local_addr()
    );

    let mut client = TcpClient::connect(ingress.local_addr())?;
    let (mut accepted, mut throttled) = (0u64, 0u64);
    for event in fleet.events() {
        match client.submit(event.tenant as u64, &event.graph) {
            Ok(()) => accepted += 1,
            Err(SubmitError::Throttled { retry_hint }) => {
                throttled += 1;
                println!(
                    "  tenant {:>2} throttled ({:<24}) retry in {:>6.1} ms",
                    event.tenant,
                    event.label,
                    retry_hint.as_secs_f64() * 1e3
                );
            }
            Err(SubmitError::QueueFull { retry_hint }) => {
                std::thread::sleep(retry_hint);
                client.submit(event.tenant as u64, &event.graph)?;
                accepted += 1;
            }
            Err(err) => return Err(err.into()),
        }
    }

    // Drain completions as they stream back over the socket.
    let mut served = 0u64;
    let mut warm = 0u64;
    while served < accepted {
        let Some(done) = client.poll_completion(Duration::from_secs(30)) else {
            break;
        };
        let latency_ms = done.total_latency().as_secs_f64() * 1e3;
        let summary = done.result.map_err(std::io::Error::other)?;
        served += done.coalesced as u64;
        warm += u64::from(summary.warm);
        println!(
            "  tenant {:>2} planned: {:>2} waves, fingerprint {:016x}, {} event(s) coalesced, {:>6.2} ms",
            done.tenant,
            summary.num_waves,
            summary.plan_fingerprint,
            done.coalesced,
            latency_ms
        );
    }

    let (stats, _rest) = client.finish();
    let stats_line = format!(
        "{} submitted, {} throttled at the door, {} re-plans ({} warm), {} errors",
        stats.submitted, stats.throttled, stats.replans, warm, stats.errors
    );
    ingress.shutdown();
    println!("\n== wire stats: {stats_line} ==");
    assert_eq!(stats.submitted, accepted);
    assert_eq!(stats.throttled, throttled);
    assert_eq!(stats.errors, 0);
    Ok(())
}
