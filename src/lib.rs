//! # Spindle
//!
//! A simulation-based reproduction of *Spindle: Efficient Distributed Training of
//! Multi-Task Large Models via Wavefront Scheduling* (ASPLOS 2025).
//!
//! Spindle plans and executes the training of multi-task multi-modal (MT MM)
//! models by decomposing the heterogeneous, dependent computation graph into
//! sequentially executed *waves*: within a wave, sliced [`MetaOp`]s run
//! concurrently on disjoint device groups with balanced execution times.
//!
//! The centre of the API is the owned, long-lived [`SpindleSession`]: bound to
//! one cluster, it plans any number of workloads and keeps a persistent
//! **curve cache** keyed by operator signature, so re-planning a changed task
//! mix (the dynamic scenario of the paper's Appendix D) re-fits **zero**
//! scaling curves for operators it has already profiled. Internally each plan
//! runs an explicit staged pipeline (`ContractedGraph` → `CurveSet` →
//! `LevelSchedule` → [`ExecutionPlan`]), device placement is pluggable behind
//! the `PlacementPolicy` trait, and Spindle plus every baseline system
//! implement the common [`PlanningSystem`] trait.
//!
//! This crate is a facade that re-exports the whole workspace:
//!
//! * [`cluster`] — GPU-cluster topology and communication cost model.
//! * [`graph`] — operator-level computation-graph IR for MT MM workloads.
//! * [`estimator`] — scalability estimator (piecewise α–β fitting over an
//!   analytic hardware model) with cache-aware curve fitting.
//! * [`core`] — the execution planner: sessions, the staged pipeline, MPSP
//!   resource allocation, wavefront scheduling and device placement.
//! * [`runtime`] — a deterministic discrete-event runtime engine that executes
//!   an [`ExecutionPlan`] wave by wave and records metrics.
//! * [`baselines`] — the comparison systems from the paper's evaluation,
//!   unified behind [`PlanningSystem`].
//! * [`workloads`] — the Multitask-CLIP / OFASys / QWen-VAL workload presets
//!   and the dynamic task-mix schedules.
//! * [`service`] — planning as a service: a multi-tenant daemon that shards
//!   sessions across worker threads with re-plan coalescing and bounded-queue
//!   backpressure.
//!
//! ## Quickstart
//!
//! ```
//! use spindle::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A long-lived planning session for a 2-node cluster of 8 GPUs each.
//! let mut session = SpindleSession::new(ClusterSpec::homogeneous(2, 8));
//!
//! // Plan the 4-task Multitask-CLIP workload and simulate one iteration.
//! let model = multitask_clip(4)?;
//! let plan = session.plan(&model)?;
//! let report = RuntimeEngine::new(&plan, session.cluster())
//!     .with_graph(&model)
//!     .run_iteration()?;
//! println!("iteration time: {:.1} ms", report.iteration_time_ms());
//!
//! // The task mix changes: re-planning reuses every cached scaling curve.
//! let fits_before = session.curve_fits();
//! let larger = multitask_clip(7)?;
//! let replanned = session.plan(&larger)?;
//! assert!(replanned.makespan() > 0.0);
//! assert!(session.curve_fits() >= fits_before); // only *new* signatures fit
//!
//! // Baselines go through the same trait-based entry point.
//! let mut deepspeed = SystemKind::DeepSpeed.planning_system();
//! let baseline_plan = deepspeed.plan(&model, &mut session)?;
//! assert!(baseline_plan.makespan() >= plan.makespan());
//! # Ok(())
//! # }
//! ```
//!
//! [`MetaOp`]: spindle_core::MetaOp
//! [`ExecutionPlan`]: spindle_core::ExecutionPlan
//! [`SpindleSession`]: spindle_core::SpindleSession
//! [`PlanningSystem`]: spindle_core::PlanningSystem

pub use spindle_baselines as baselines;
pub use spindle_cluster as cluster;
pub use spindle_core as core;
pub use spindle_estimator as estimator;
pub use spindle_graph as graph;
pub use spindle_runtime as runtime;
pub use spindle_service as service;
pub use spindle_workloads as workloads;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use spindle_baselines::{BaselineSystem, SystemKind};
    pub use spindle_cluster::{ClusterSpec, DeviceId};
    pub use spindle_core::{
        ContractedGraph, CurveSet, ExecutionPlan, LevelSchedule, PlacementPolicy,
        PlacementStrategy, PlannerConfig, PlanningSystem, SpindlePlanner, SpindleSession,
    };
    pub use spindle_estimator::{CurveCacheStats, ScalabilityEstimator, ScalingCurve};
    pub use spindle_graph::{ComputationGraph, Modality, OpKind, TaskSpec};
    pub use spindle_runtime::{IterationReport, RuntimeEngine};
    pub use spindle_workloads::{multitask_clip, ofasys, qwen_val, WorkloadPreset};
}
