//! # Spindle
//!
//! A simulation-based reproduction of *Spindle: Efficient Distributed Training of
//! Multi-Task Large Models via Wavefront Scheduling* (ASPLOS 2025).
//!
//! Spindle plans and executes the training of multi-task multi-modal (MT MM)
//! models by decomposing the heterogeneous, dependent computation graph into
//! sequentially executed *waves*: within a wave, sliced [`MetaOp`]s run
//! concurrently on disjoint device groups with balanced execution times.
//!
//! This crate is a facade that re-exports the whole workspace:
//!
//! * [`cluster`] — GPU-cluster topology and communication cost model.
//! * [`graph`] — operator-level computation-graph IR for MT MM workloads.
//! * [`estimator`] — scalability estimator (piecewise α–β fitting over an
//!   analytic hardware model).
//! * [`core`] — the execution planner: graph contraction, MPSP resource
//!   allocation, wavefront scheduling and device placement.
//! * [`runtime`] — a deterministic discrete-event runtime engine that executes
//!   an [`ExecutionPlan`] wave by wave and records metrics.
//! * [`baselines`] — the comparison systems from the paper's evaluation.
//! * [`workloads`] — the Multitask-CLIP / OFASys / QWen-VAL workload presets.
//!
//! ## Quickstart
//!
//! ```
//! use spindle::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 2-node cluster of 8 GPUs each (A800-like).
//! let cluster = ClusterSpec::homogeneous(2, 8);
//! // The 4-task Multitask-CLIP workload from the paper's evaluation.
//! let model = multitask_clip(4)?;
//! // Plan and simulate one training iteration.
//! let plan = Planner::new(&model, &cluster).plan()?;
//! let report = RuntimeEngine::new(&plan, &cluster).run_iteration()?;
//! println!("iteration time: {:.1} ms", report.iteration_time_ms());
//! # Ok(())
//! # }
//! ```
//!
//! [`MetaOp`]: spindle_core::MetaOp
//! [`ExecutionPlan`]: spindle_core::ExecutionPlan

pub use spindle_baselines as baselines;
pub use spindle_cluster as cluster;
pub use spindle_core as core;
pub use spindle_estimator as estimator;
pub use spindle_graph as graph;
pub use spindle_runtime as runtime;
pub use spindle_workloads as workloads;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use spindle_baselines::{BaselineSystem, SystemKind};
    pub use spindle_cluster::{ClusterSpec, DeviceId};
    pub use spindle_core::{ExecutionPlan, Planner, PlannerConfig};
    pub use spindle_estimator::{ScalabilityEstimator, ScalingCurve};
    pub use spindle_graph::{ComputationGraph, Modality, OpKind, TaskSpec};
    pub use spindle_runtime::{IterationReport, RuntimeEngine};
    pub use spindle_workloads::{multitask_clip, ofasys, qwen_val, WorkloadPreset};
}
