//! Cache-eviction safety: under byte budgets the session caches (structural
//! plan cache + estimator curve cache) must (a) never exceed their budgets at
//! any observation point of a seeded churn trace, and (b) keep re-plans
//! bit-identical to cold plans even when the entries they would have reused
//! were evicted. Eviction changes cost — `levels_reused` drops — never output.

use spindle::prelude::*;
use spindle::workloads::{hyperscale_subset, HYPERSCALE_ROSTER};
use spindle_cluster::ClusterSpec;
use spindle_graph::XorShift64Star;

fn assert_plans_identical(warm: &ExecutionPlan, cold: &ExecutionPlan, context: &str) {
    assert_eq!(warm.num_waves(), cold.num_waves(), "wave count: {context}");
    assert_eq!(warm.waves(), cold.waves(), "waves: {context}");
    assert!(
        warm.makespan().to_bits() == cold.makespan().to_bits(),
        "makespan: {context}"
    );
    assert!(
        warm.theoretical_optimum().to_bits() == cold.theoretical_optimum().to_bits(),
        "theoretical optimum: {context}"
    );
}

#[test]
fn budgeted_caches_never_exceed_their_budgets_under_churn() {
    // Budgets tight enough that a roster walk must evict, checked after every
    // re-plan: the byte gauges are hard bounds, not high-water marks.
    let structural_budget = 48 * 1024;
    let curve_budget = 8 * 1024;
    let cluster = ClusterSpec::homogeneous(4, 8);
    let mut session = SpindleSession::with_config(
        cluster.clone(),
        PlannerConfig {
            structural_cache_budget: structural_budget,
            curve_cache_budget: curve_budget,
            ..PlannerConfig::default()
        },
    );
    let mut rng = XorShift64Star::new(0xCAFE);
    let mut active: Vec<bool> = (0..HYPERSCALE_ROSTER).map(|s| s < 10).collect();
    for step in 0..24 {
        let slots: Vec<usize> = (0..HYPERSCALE_ROSTER).filter(|&s| active[s]).collect();
        let graph = hyperscale_subset(&slots).unwrap();
        let outcome = session.replan(&graph).unwrap();
        assert!(
            session.cache_bytes() <= structural_budget + curve_budget,
            "step {step}: caches hold {} bytes over a {} byte budget",
            session.cache_bytes(),
            structural_budget + curve_budget
        );
        assert!(outcome.cache.bytes <= structural_budget + curve_budget);

        let cold = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
        assert_plans_identical(&outcome.plan, &cold, &format!("budgeted churn step {step}"));

        let slot = (rng.next_u64() % HYPERSCALE_ROSTER as u64) as usize;
        let can_deactivate = active[slot] && active.iter().filter(|&&a| a).count() > 4;
        active[slot] = !can_deactivate;
    }
    assert!(
        session.cache_evictions() > 0,
        "a 24-step roster walk under tight budgets must evict"
    );
    let stats = session.planning_stats();
    assert_eq!(stats.cache.bytes, session.cache_bytes());
    assert_eq!(stats.cache.evictions, session.cache_evictions() as u64);
}

#[test]
fn post_eviction_replans_match_cold_plans_and_lose_only_reuse() {
    // Unbudgeted control: the A↔B churn pattern is served structurally — all
    // levels spliced once both mixes are cached.
    let cluster = ClusterSpec::homogeneous(4, 8);
    let slots_a: Vec<usize> = (0..12).collect();
    let slots_b: Vec<usize> = (0..12).filter(|&s| s != 1).collect();
    let graph_a = hyperscale_subset(&slots_a).unwrap();
    let graph_b = hyperscale_subset(&slots_b).unwrap();

    let mut unbounded = SpindleSession::new(cluster.clone());
    unbounded.replan(&graph_a).unwrap();
    unbounded.replan(&graph_b).unwrap();
    let warm = unbounded.replan(&graph_a).unwrap();
    assert_eq!(warm.levels_reused, warm.levels_total);
    assert_eq!(unbounded.cache_evictions(), 0, "no budget, no evictions");

    // Same churn with a structural budget so small every insertion evicts its
    // predecessor: nothing survives to be reused, yet every plan is identical.
    let mut starved = SpindleSession::with_config(
        cluster.clone(),
        PlannerConfig {
            structural_cache_budget: 1,
            ..PlannerConfig::default()
        },
    );
    starved.replan(&graph_a).unwrap();
    starved.replan(&graph_b).unwrap();
    let evicted = starved.replan(&graph_a).unwrap();
    assert_eq!(
        evicted.levels_reused, 0,
        "a starved cache has nothing left to splice"
    );
    assert!(!evicted.placement_reused);
    assert!(starved.cache_evictions() > 0);
    assert_plans_identical(&evicted.plan, &warm.plan, "starved vs unbounded A↔B churn");

    // Restoring the budget mid-session re-enables reuse without a restart.
    starved.config_mut().structural_cache_budget = usize::MAX;
    starved.replan(&graph_b).unwrap();
    starved.replan(&graph_a).unwrap();
    let recovered = starved.replan(&graph_b).unwrap();
    assert_eq!(recovered.levels_reused, recovered.levels_total);
    let control = SpindleSession::new(cluster).plan(&graph_b).unwrap();
    assert_plans_identical(&recovered.plan, &control, "recovered budget");
}
