//! Elastic re-planning properties: a session that loses devices must
//! re-plan onto the survivors with every plan invariant intact, never place
//! work on a dead device, price the migration it induces, reuse the clean
//! prefix of unaffected levels — and, once the devices return, recur
//! bit-for-bit with a cold plan as if the churn never happened.

use spindle::prelude::*;
use spindle::runtime::{SimConfig, Simulator};
use spindle_cluster::ClusterSpec;
use spindle_core::ReplanOutcome;
use spindle_graph::{ComputationGraph, GraphBuilder, TensorShape, XorShift64Star};

/// A 3-level chain (embedding → towers → loss) whose first level is a single
/// MetaOp: on a 12-device cluster its power-of-two allocation occupies only
/// devices 0..8, so removals of high-id devices leave level 0's placement
/// clean — the partial-prefix-reuse case — while low-id removals dirty every
/// level.
fn staged_graph() -> ComputationGraph {
    let mut b = GraphBuilder::new();
    let t = b.add_task("staged", [Modality::Audio, Modality::Text], 8);
    let embed = b
        .add_op(t, OpKind::Embedding, TensorShape::new(8, 229, 768))
        .unwrap();
    let audio = b
        .add_op_chain(
            t,
            OpKind::Encoder(Modality::Audio),
            TensorShape::new(8, 229, 768),
            8,
        )
        .unwrap();
    let text = b
        .add_op_chain(
            t,
            OpKind::Encoder(Modality::Text),
            TensorShape::new(8, 77, 768),
            6,
        )
        .unwrap();
    let loss = b
        .add_op(t, OpKind::ContrastiveLoss, TensorShape::new(8, 1, 768))
        .unwrap();
    b.add_flow(embed, audio[0]).unwrap();
    b.add_flow(embed, text[0]).unwrap();
    b.add_flow(*audio.last().unwrap(), loss).unwrap();
    b.add_flow(*text.last().unwrap(), loss).unwrap();
    b.build().unwrap()
}

/// No wave entry of `outcome` may be placed on any of `removed`.
fn assert_no_dead_placement(outcome: &ReplanOutcome, removed: &[DeviceId], context: &str) {
    for (w, wave) in outcome.plan.waves().iter().enumerate() {
        for entry in &wave.entries {
            if let Some(group) = &entry.placement {
                for &dead in removed {
                    assert!(
                        !group.contains(dead),
                        "{context}: wave {w} entry {} placed on removed {dead:?}",
                        entry.metaop
                    );
                }
            }
        }
    }
}

#[test]
fn seeded_removals_replan_onto_survivors_with_invariants_intact() {
    let cluster = ClusterSpec::homogeneous(3, 4);
    let capacity = cluster.device_memory_bytes();
    let graph = staged_graph();
    let mut rng = XorShift64Star::new(0x0E1A_571C);
    let mut saw_partial_reuse = false;
    let mut saw_priced_migration = false;

    for step in 0..12 {
        let mut session = SpindleSession::new(cluster.clone());
        let baseline = session.plan(&graph).unwrap();
        // Remove 1–3 distinct devices, drawn over the whole id space so
        // some draws hit level-0 devices (full re-placement) and some only
        // the high-id tail (clean level-0 prefix, partial reuse).
        let k = 1 + (rng.next_u64() % 3) as usize;
        let mut removed: Vec<DeviceId> = Vec::new();
        while removed.len() < k {
            let d = DeviceId((rng.next_u64() % 12) as u32);
            if !removed.contains(&d) {
                removed.push(d);
            }
        }
        let shrunk = session.remove_devices(&removed).unwrap();
        assert_eq!(shrunk, removed.len(), "step {step}: all removals applied");

        let outcome = session.replan(&graph).unwrap();
        let context = format!("step {step} (removed {removed:?})");
        outcome.plan.check_invariants(capacity).unwrap();
        assert_no_dead_placement(&outcome, &removed, &context);
        assert_eq!(outcome.devices_lost, removed.len(), "{context}");
        assert!(
            outcome.levels_replaced <= outcome.levels_total,
            "{context}: replaced more levels than exist"
        );
        // Migration is priced exactly when placements actually moved.
        assert_eq!(
            outcome.migration_bytes > 0,
            outcome.migration_cost > 0.0,
            "{context}: bytes {} vs cost {}",
            outcome.migration_bytes,
            outcome.migration_cost
        );
        if outcome.levels_replaced > 0 && outcome.levels_replaced < outcome.levels_total {
            saw_partial_reuse = true;
        }
        if outcome.migration_bytes > 0 {
            saw_priced_migration = true;
        }
        // The baseline plan (pre-churn) is untouched by the re-plan.
        assert_eq!(baseline.num_devices(), 12);
    }
    assert!(
        saw_partial_reuse,
        "no draw exercised partial prefix reuse (0 < levels_replaced < levels_total)"
    );
    assert!(
        saw_priced_migration,
        "no draw induced (and priced) any migration"
    );
}

#[test]
fn restore_then_recur_is_bit_identical_to_a_cold_plan() {
    let cluster = ClusterSpec::homogeneous(2, 8);
    let graph = multitask_clip(5).unwrap();
    let mut session = SpindleSession::new(cluster.clone());
    session.plan(&graph).unwrap();

    // Walk through a removal, a further removal, a partial restore and a
    // full restore, re-planning at every step.
    let first: Vec<DeviceId> = vec![DeviceId(3), DeviceId(4)];
    let second: Vec<DeviceId> = vec![DeviceId(12)];
    session.remove_devices(&first).unwrap();
    session.replan(&graph).unwrap();
    session.remove_devices(&second).unwrap();
    session.replan(&graph).unwrap();
    assert_eq!(session.restore_devices(&second), 1);
    session.replan(&graph).unwrap();
    assert_eq!(session.restore_devices(&first), 2);
    assert!(session.removed_devices().is_empty());

    let warm = session.replan(&graph).unwrap();
    let cold = SpindleSession::new(cluster).plan(&graph).unwrap();
    assert_eq!(
        warm.plan.waves(),
        cold.waves(),
        "waves diverged after churn"
    );
    assert!(
        warm.plan.makespan().to_bits() == cold.makespan().to_bits(),
        "makespan diverged: {} vs {}",
        warm.plan.makespan(),
        cold.makespan()
    );
    assert_eq!(warm.plan.num_devices(), cold.num_devices());
    assert_eq!(warm.devices_lost, 0);
}

#[test]
fn half_cluster_loss_degrades_simulated_time_proportionally() {
    // A controlled degradation check: lose nodes 2 and 3 of a 4x8 cluster
    // (half the devices) under a workload wide enough to keep all 32 busy.
    // Halving the devices at most doubles the per-wave compute; boundary
    // and sync costs shift but stay the same order, so the simulated
    // iteration must land within a proportional band — not collapse, not
    // blow up.
    let cluster = ClusterSpec::homogeneous(4, 8);
    let graph = multitask_clip(8).unwrap();
    let mut session = SpindleSession::new(cluster.clone());
    let full_plan = session.plan(&graph).unwrap();
    let before = Simulator::new(full_plan, &cluster)
        .with_graph(graph.clone())
        .with_config(SimConfig::contended())
        .run_iteration()
        .unwrap()
        .total_s();

    let removed: Vec<DeviceId> = (16..32).map(DeviceId).collect();
    session.remove_devices(&removed).unwrap();
    let outcome = session.replan(&graph).unwrap();
    assert_eq!(outcome.devices_lost, 16);
    assert_no_dead_placement(&outcome, &removed, "half-cluster loss");
    let survivors = session.cluster_handle();
    let after = Simulator::new(outcome.plan, &survivors)
        .with_graph(graph.clone())
        .with_config(SimConfig::contended())
        .run_iteration()
        .unwrap()
        .total_s();

    assert!(
        after <= before * 2.5,
        "losing half the cluster more than 2.5x'd the iteration: {before:.4}s -> {after:.4}s"
    );
    assert!(
        after >= before * 0.8,
        "losing half the cluster sped the iteration up: {before:.4}s -> {after:.4}s"
    );
}

/// A seeded walk of loss/restore cycles with an active checkpoint policy:
/// every re-plan's recovery accounting (re-materialised MetaOps, restore
/// bytes, priced restore stall) is internally consistent, the whole-node
/// kills in the walk actually strand MetaOps (ground truth fires), and the
/// entire walk is bit-identical when replayed — recovery pricing adds no
/// nondeterminism.
#[test]
fn seeded_loss_restore_cycles_account_recovery_deterministically() {
    use spindle::cluster::StorageSpec;
    use spindle::runtime::{migration_flows, price_restore, CheckpointPolicy};

    #[derive(Debug, PartialEq)]
    struct Record {
        makespan_bits: u64,
        num_waves: usize,
        rematerialized: usize,
        restore_bytes: u64,
        restore_price_bits: u64,
    }

    let walk = || -> Vec<Record> {
        let cluster =
            ClusterSpec::homogeneous(2, 4).with_storage(StorageSpec::disaggregated_nvme());
        let graph = multitask_clip(5).unwrap();
        let policy = CheckpointPolicy::every(4);
        let mut session = SpindleSession::new(cluster.clone());
        let mut prev_plan = session.plan(&graph).unwrap();
        let mut rng = XorShift64Star::new(0x0C1C_7E57);
        let mut records = Vec::new();
        for step in 0..10 {
            let removed_before = session.removed_devices().to_vec();
            let alive: Vec<DeviceId> = (0..8)
                .map(DeviceId)
                .filter(|d| !removed_before.contains(d))
                .collect();
            match rng.next_u64() % 3 {
                // Kill the whole second island (whatever of it still lives):
                // the all-replicas-dead case checkpoints exist for.
                0 => {
                    let node1: Vec<DeviceId> = alive.iter().copied().filter(|d| d.0 >= 4).collect();
                    if node1.is_empty() || alive.len() - node1.len() < 2 {
                        continue;
                    }
                    session.remove_devices(&node1).unwrap();
                }
                // Lose one random device, keeping enough survivors.
                1 => {
                    if alive.len() <= 3 {
                        continue;
                    }
                    let victim = alive[(rng.next_u64() % alive.len() as u64) as usize];
                    session.remove_devices(&[victim]).unwrap();
                }
                // Capacity comes back.
                _ => {
                    if removed_before.is_empty() {
                        continue;
                    }
                    session.restore_devices(&removed_before);
                }
            }
            let outcome = session.replan(&graph).unwrap();
            let survivors = session.cluster_handle();
            outcome
                .plan
                .check_invariants(survivors.device_memory_bytes())
                .unwrap();
            let migration = migration_flows(&prev_plan, &outcome.plan, &survivors);
            let price = price_restore(&survivors, &migration.restores, &policy, true);
            let context = format!("step {step}");
            // Internal consistency of the runtime's partition.
            assert_eq!(
                migration.restore_bytes() > 0,
                migration.rematerialized_metaops() > 0,
                "{context}: bytes vs count"
            );
            assert_eq!(
                price > 0.0,
                !migration.restores.is_empty(),
                "{context}: priced {price}s for {} restores",
                migration.restores.len()
            );
            assert!(price.is_finite(), "{context}");
            // The planner's own counters never claim a restore the runtime
            // partition disproves.
            assert_eq!(
                outcome.rematerialized_metaops > 0,
                outcome.restore_bytes > 0,
                "{context}: session counters disagree"
            );
            if outcome.restore_bytes > 0 {
                assert!(
                    migration.restore_bytes() > 0,
                    "{context}: session reports {} restore bytes, runtime found none",
                    outcome.restore_bytes
                );
            }
            records.push(Record {
                makespan_bits: outcome.plan.makespan().to_bits(),
                num_waves: outcome.plan.num_waves(),
                rematerialized: migration.rematerialized_metaops(),
                restore_bytes: migration.restore_bytes(),
                restore_price_bits: price.to_bits(),
            });
            prev_plan = outcome.plan;
        }
        // Close the walk: full restore must recur bit-identically cold.
        let still_down = session.removed_devices().to_vec();
        if !still_down.is_empty() {
            session.restore_devices(&still_down);
        }
        let warm = session.replan(&graph).unwrap();
        let cold = SpindleSession::new(cluster).plan(&graph).unwrap();
        assert_eq!(warm.plan.waves(), cold.waves(), "post-walk warm vs cold");
        records
    };

    let first = walk();
    let second = walk();
    assert!(
        first.iter().any(|r| r.restore_bytes > 0),
        "the walk's whole-node kills never stranded a MetaOp — no ground truth exercised"
    );
    assert_eq!(first, second, "replaying the walk diverged");
}
