//! Cross-crate integration tests: the full pipeline from workload definition
//! through planning, placement and simulated execution, for every evaluated
//! system on every workload family — all driven through `SpindleSession` and
//! the `PlanningSystem` trait.

use spindle::baselines::SystemKind;
use spindle::prelude::*;
use spindle::workloads::{multitask_clip_with_batch, QwenValSize};
use spindle_cluster::ClusterSpec;

/// Small versions of each workload family keep the integration suite fast.
fn workloads() -> Vec<(&'static str, spindle_graph::ComputationGraph)> {
    vec![
        ("multitask-clip", multitask_clip_with_batch(3, 0.5).unwrap()),
        ("ofasys", ofasys(3).unwrap()),
        ("qwen-val", qwen_val(QwenValSize::B9).unwrap()),
    ]
}

#[test]
fn every_system_handles_every_workload_family() {
    let mut session = SpindleSession::new(ClusterSpec::homogeneous(1, 8));
    for (name, graph) in workloads() {
        for kind in SystemKind::ALL {
            let plan = kind
                .planning_system()
                .plan(&graph, &mut session)
                .unwrap_or_else(|e| panic!("{kind} failed on {name}: {e}"));
            plan.validate()
                .unwrap_or_else(|e| panic!("{kind} produced an invalid plan on {name}: {e}"));
            plan.require_placement()
                .unwrap_or_else(|e| panic!("{kind} left {name} unplaced: {e}"));
            let report = RuntimeEngine::new(&plan, session.cluster())
                .with_graph(&graph)
                .run_iteration()
                .unwrap_or_else(|e| panic!("{kind} failed to execute {name}: {e}"));
            assert!(report.iteration_time_ms() > 0.0, "{kind} on {name}");
            assert!(
                report.breakdown().fwd_bwd_s > 0.0,
                "{kind} on {name} reported no compute"
            );
        }
    }
}

#[test]
fn spindle_beats_the_sota_systems_on_the_paper_workloads() {
    // The headline claim of the paper, checked on the 16-GPU cluster for the
    // two workload families where Spindle's advantage is largest.
    let mut session = SpindleSession::new(ClusterSpec::homogeneous(2, 8));
    for (name, graph) in [
        ("multitask-clip-4t", multitask_clip(4).unwrap()),
        ("ofasys-4t", ofasys(4).unwrap()),
    ] {
        let mut time = |kind: SystemKind| {
            let plan = kind.planning_system().plan(&graph, &mut session).unwrap();
            RuntimeEngine::new(&plan, &ClusterSpec::homogeneous(2, 8))
                .with_graph(&graph)
                .run_iteration()
                .unwrap()
                .iteration_time_ms()
        };
        let spindle = time(SystemKind::Spindle);
        let deepspeed = time(SystemKind::DeepSpeed);
        let megatron = time(SystemKind::MegatronLM);
        assert!(
            spindle < deepspeed,
            "{name}: Spindle {spindle:.1} ms should beat DeepSpeed {deepspeed:.1} ms"
        );
        assert!(
            spindle < megatron,
            "{name}: Spindle {spindle:.1} ms should beat Megatron-LM {megatron:.1} ms"
        );
    }
}

#[test]
fn spindles_advantage_grows_with_task_count() {
    // Fig. 8: the speedup over DeepSpeed is larger with 7 tasks than with 4.
    let cluster = ClusterSpec::homogeneous(2, 8);
    let mut session = SpindleSession::new(cluster.clone());
    let mut speedup = |tasks: usize| {
        let graph = multitask_clip(tasks).unwrap();
        let mut run = |kind: SystemKind| {
            let plan = kind.planning_system().plan(&graph, &mut session).unwrap();
            RuntimeEngine::new(&plan, &cluster)
                .with_graph(&graph)
                .run_iteration()
                .unwrap()
                .iteration_time_ms()
        };
        run(SystemKind::DeepSpeed) / run(SystemKind::Spindle)
    };
    let four = speedup(4);
    let seven = speedup(7);
    assert!(
        seven > four,
        "7-task speedup ({seven:.2}x) should exceed 4-task speedup ({four:.2}x)"
    );
}

#[test]
fn session_quickstart_flow_works() {
    // The README / crate-level quickstart, as an executable test.
    let mut session = SpindleSession::new(ClusterSpec::homogeneous(2, 8));
    let model = multitask_clip(4).unwrap();
    let plan = session.plan(&model).unwrap();
    let report = RuntimeEngine::new(&plan, session.cluster())
        .run_iteration()
        .unwrap();
    assert!(report.iteration_time_ms() > 0.0);
    assert!(plan.theoretical_optimum() > 0.0);
    assert!(plan.makespan() >= plan.theoretical_optimum() * 0.99);
}

#[test]
fn independent_sessions_produce_identical_plans() {
    // With the one-shot `Planner` shim gone, `SpindleSession` is the only
    // entry point — two fresh sessions over the same cluster must agree
    // bit-for-bit, and the `PlanningSystem` trait is the only baseline surface.
    let cluster = ClusterSpec::homogeneous(2, 8);
    let model = multitask_clip(4).unwrap();
    let first = SpindleSession::new(cluster.clone()).plan(&model).unwrap();
    let second = SpindleSession::new(cluster.clone()).plan(&model).unwrap();
    assert_eq!(first.waves(), second.waves());
    assert!((first.theoretical_optimum() - second.theoretical_optimum()).abs() < 1e-12);
    let mut session = SpindleSession::new(cluster);
    let baseline = BaselineSystem::new(SystemKind::DeepSpeed)
        .plan(&model, &mut session)
        .unwrap();
    baseline.validate().unwrap();
}

#[test]
fn larger_clusters_do_not_slow_spindle_down() {
    let graph = multitask_clip(7).unwrap();
    let mut previous = f64::INFINITY;
    for nodes in [1usize, 2, 4] {
        let cluster = ClusterSpec::homogeneous(nodes, 8);
        let mut session = SpindleSession::new(cluster.clone());
        let plan = session.plan(&graph).unwrap();
        let report = RuntimeEngine::new(&plan, &cluster)
            .with_graph(&graph)
            .run_iteration()
            .unwrap();
        let t = report.iteration_time_ms();
        assert!(
            t <= previous * 1.1,
            "iteration time should not regress when adding nodes: {t:.1} vs {previous:.1}"
        );
        previous = t;
    }
}

#[test]
fn memory_fits_on_the_paper_cluster_for_the_encoder_workloads() {
    // The Multitask-CLIP and OFASys workloads (≤1.2 B parameters) must fit the
    // 80 GiB A800s comfortably. QWen-VAL is checked separately below: the
    // planner does not yet raise a MetaOp's *minimum* allocation for memory
    // feasibility, so a 9 B decoder sliced onto very few devices can exceed a
    // single GPU — a known simplification documented in DESIGN.md.
    let mut session = SpindleSession::new(ClusterSpec::homogeneous(4, 8));
    let capacity_gib = 80.0;
    for (name, graph) in [
        ("multitask-clip", multitask_clip_with_batch(3, 0.5).unwrap()),
        ("ofasys", ofasys(3).unwrap()),
    ] {
        let plan = session.plan(&graph).unwrap();
        let report = RuntimeEngine::new(&plan, session.cluster())
            .with_graph(&graph)
            .run_iteration()
            .unwrap();
        for (device, gib) in report.device_memory_gib() {
            assert!(
                gib <= capacity_gib,
                "{name}: {device} needs {gib:.1} GiB, above the 80 GiB capacity"
            );
        }
    }
}

#[test]
fn spindle_memory_is_better_balanced_than_task_level_allocation() {
    // Appendix G: Spindle's placement keeps per-device memory balanced, while
    // Spindle-Optimus' coarse task-level allocation leaves it skewed.
    let cluster = ClusterSpec::homogeneous(2, 8);
    let mut session = SpindleSession::new(cluster.clone());
    let graph = multitask_clip(4).unwrap();
    let mut imbalance = |kind: SystemKind| {
        let plan = kind.planning_system().plan(&graph, &mut session).unwrap();
        RuntimeEngine::new(&plan, &cluster)
            .with_graph(&graph)
            .run_iteration()
            .unwrap()
            .memory_imbalance()
    };
    assert!(imbalance(SystemKind::Spindle) < imbalance(SystemKind::SpindleOptimus));
}
