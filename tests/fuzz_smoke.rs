//! Smoke coverage of the scenario-fuzzing harness: a fixed-seed batch must
//! pass every invariant, a deliberately corrupted plan must be caught *and*
//! shrunk to a minimal reproducer, and the `WorkloadSignature` key the curve
//! cache relies on must be injective over the generator's operator space.

use std::collections::HashMap;

use spindle_bench::fuzz::{self, FuzzConfig, Mutation};
use spindle_cluster::ClusterSpec;
use spindle_core::SpindleSession;
use spindle_graph::{OpKind, TensorShape, WorkloadSignature};
use spindle_workloads::{FuzzBounds, Scenario};

/// The seed the CI `fuzz-smoke` job uses (`0xCAFEBABE`); pinning the same one
/// here means a CI failure reproduces locally with `cargo test fuzz_smoke`.
const SMOKE_SEED: u64 = 0xCAFE_BABE;

#[test]
fn fixed_seed_smoke_batch_is_clean() {
    let cfg = FuzzConfig::quick(SMOKE_SEED, 16);
    let report = fuzz::run(&cfg);
    if let Some((scenario, violation)) = report.violation {
        panic!("violation on {}: {violation}", scenario.label());
    }
    assert_eq!(report.stats.draws, 16);
    // Every draw checks all four systems across every churn phase, and
    // every Spindle phase plan is compared wave-for-wave to a cold plan.
    assert!(report.stats.plans_checked >= 16 * fuzz::FUZZ_SYSTEMS.len() as u64);
    assert!(report.stats.simulations == 2 * report.stats.plans_checked);
    assert!(report.stats.warm_identical >= 16);
}

#[test]
fn deliberately_broken_invariants_are_caught() {
    let cfg = FuzzConfig::quick(SMOKE_SEED, 1);
    let scenario = Scenario::draw(cfg.seed, 0, &cfg.bounds);
    for mutation in Mutation::ALL {
        let violation = fuzz::check_scenario(&scenario, &cfg, Some(mutation))
            .expect_err("a corrupted plan must fail the gauntlet");
        assert_eq!(violation.seed, scenario.seed, "{mutation}");
        assert_eq!(violation.index, scenario.index, "{mutation}");
        assert!(
            violation.scenario_json.contains("\"seed\""),
            "{mutation}: violation must embed the serialized config"
        );
    }
}

#[test]
fn caught_violation_shrinks_to_a_minimal_reproducer() {
    let cfg = FuzzConfig::quick(SMOKE_SEED, 1);
    // Pick a draw with structure worth shrinking.
    let scenario = (0..64)
        .map(|i| Scenario::draw(cfg.seed, i, &cfg.bounds))
        .find(|s| s.tasks.len() >= 3 && !s.churn.is_empty())
        .expect("quick bounds produce draws with several tasks and churn");
    let mutation = Some(Mutation::OverAllocate);
    let violation =
        fuzz::check_scenario(&scenario, &cfg, mutation).expect_err("mutation must be caught");
    let (minimal, min_violation) = fuzz::shrink(scenario.clone(), violation, &cfg, mutation);

    // The reproducer is strictly smaller and still fails the same check.
    let weight = |s: &Scenario| {
        s.tasks.len() * 1000
            + s.churn.len() * 100
            + s.num_devices() * 10
            + s.tasks.iter().map(|t| t.tower_layers).sum::<usize>()
    };
    assert!(
        weight(&minimal) < weight(&scenario),
        "shrink made no progress"
    );
    fuzz::check_scenario(&minimal, &cfg, mutation)
        .expect_err("the minimal reproducer must still fail");
    assert!(min_violation.detail.contains("devices"), "{min_violation}");
    // And it carries everything needed to re-run: the draw coordinates and
    // the serialized config.
    assert_eq!(min_violation.seed, SMOKE_SEED);
    assert!(min_violation.repro_command().contains("--seed"));
    assert!(min_violation.scenario_json.contains("\"tasks\""));
}

/// The independently derived identity of an operator's cost model — exactly
/// what [`WorkloadSignature`] promises to encode, reconstructed from the
/// public [`Operator`](spindle_graph::Operator) accessors rather than from
/// the signature itself.
type CostTuple = (OpKind, TensorShape, u64, u64, u64);

#[test]
fn workload_signature_is_injective_over_the_generator_space() {
    let bounds = FuzzBounds::quick();
    let mut sig_of: HashMap<CostTuple, WorkloadSignature> = HashMap::new();
    let mut tuple_of: HashMap<WorkloadSignature, CostTuple> = HashMap::new();
    for index in 0..32 {
        let scenario = Scenario::draw(SMOKE_SEED, index, &bounds);
        let active = vec![true; scenario.tasks.len()];
        let graph = scenario.graph_of(&active).unwrap();
        for op in graph.ops() {
            let tuple: CostTuple = (
                op.kind(),
                op.input_shape(),
                op.flops_forward().to_bits(),
                op.param_bytes(),
                op.output_bytes(),
            );
            let sig = op.workload_signature();
            // Well-defined: the same cost tuple always maps to one signature.
            if let Some(prev) = sig_of.insert(tuple, sig) {
                assert_eq!(prev, sig, "one cost tuple produced two signatures");
            }
            // Injective: one signature never covers two distinct cost tuples.
            if let Some(prev) = tuple_of.insert(sig, tuple) {
                assert_eq!(prev, tuple, "two cost tuples collided on {sig:?}");
            }
        }
    }
    assert!(
        tuple_of.len() > 32,
        "expected a diverse signature space, got {} distinct signatures",
        tuple_of.len()
    );
}

#[test]
fn equal_signatures_mean_identical_curve_cache_behavior() {
    let bounds = FuzzBounds::quick();
    let scenario = (0..64)
        .map(|i| Scenario::draw(SMOKE_SEED, i, &bounds))
        .find(|s| s.tasks.len() >= 3)
        .expect("quick bounds produce multi-task draws");
    let cluster = ClusterSpec::homogeneous(scenario.nodes, scenario.gpus_per_node);
    let all_active = vec![true; scenario.tasks.len()];
    let graph = scenario.graph_of(&all_active).unwrap();

    // Fitting is keyed by WorkloadSignature, so a cold plan performs at most
    // one fit per distinct signature in the graph.
    let distinct: std::collections::HashSet<WorkloadSignature> = graph
        .ops()
        .iter()
        .map(|op| op.workload_signature())
        .collect();
    let mut session = SpindleSession::new(cluster);
    session.plan(&graph).unwrap();
    assert!(
        session.curve_fits() <= distinct.len(),
        "{} fits for {} distinct signatures",
        session.curve_fits(),
        distinct.len()
    );

    // Every operator of a sub-graph shares its signature with the full
    // graph's operators, so re-planning any active subset is fully warm:
    // equal signatures served from cache, zero new fits.
    let mut subset = vec![false; scenario.tasks.len()];
    subset[0] = true;
    subset[scenario.tasks.len() - 1] = true;
    let sub_graph = scenario.graph_of(&subset).unwrap();
    let outcome = session.replan(&sub_graph).unwrap();
    assert_eq!(outcome.new_curve_fits, 0, "subset re-plan must be warm");
    assert!(outcome.warm);
}
