//! Incremental re-planning equivalence: a warm `replan` served (partly or
//! wholly) from the structural plan cache must produce a plan *identical* to
//! a cold plan of the same graph — same waves, allocations, placements,
//! makespan and theoretical optimum — under arbitrary seeded churn
//! sequences. These are the safety proofs behind the `incremental_replan`
//! bench: the speedup is only meaningful because the output is bit-for-bit
//! the same.

use spindle::prelude::*;
use spindle::workloads::{hyperscale_churn, hyperscale_subset, HYPERSCALE_ROSTER};
use spindle_cluster::ClusterSpec;
use spindle_graph::{ComputationGraph, XorShift64Star};

/// Asserts bit-for-bit plan equality (waves include placement and all
/// floating-point schedule fields via `PartialEq`).
fn assert_plans_identical(incremental: &ExecutionPlan, cold: &ExecutionPlan, context: &str) {
    assert_eq!(
        incremental.num_waves(),
        cold.num_waves(),
        "wave count diverged: {context}"
    );
    assert_eq!(
        incremental.waves(),
        cold.waves(),
        "waves diverged: {context}"
    );
    assert!(
        incremental.makespan().to_bits() == cold.makespan().to_bits(),
        "makespan diverged: {context}"
    );
    assert!(
        incremental.theoretical_optimum().to_bits() == cold.theoretical_optimum().to_bits(),
        "theoretical optimum diverged: {context}"
    );
    assert_eq!(incremental.num_devices(), cold.num_devices());
}

#[test]
fn clip_churn_replans_match_cold_plans_bit_for_bit() {
    // A task-count walk over the Multitask-CLIP family: every re-plan of the
    // warm session must equal a cold plan from a fresh session.
    let cluster = ClusterSpec::homogeneous(4, 8);
    let mut warm = SpindleSession::new(cluster.clone());
    let mut rng = XorShift64Star::new(0xC11E);
    let mut tasks: i64 = 4;
    for step in 0..10 {
        let graph = multitask_clip(tasks as usize).unwrap();
        let outcome = warm.replan(&graph).unwrap();
        let cold = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
        assert_plans_identical(
            &outcome.plan,
            &cold,
            &format!("clip churn step {step} ({tasks} tasks)"),
        );
        outcome.plan.validate().unwrap();
        outcome.plan.require_placement().unwrap();
        let step_delta = match rng.next_u64() % 4 {
            0 => -2,
            1 => -1,
            2 => 1,
            _ => 2,
        };
        tasks = (tasks + step_delta).clamp(1, 10);
    }
    // The walk revisits task counts, so the structural cache must have
    // served whole plans by now.
    assert!(warm.structural_cache_stats().skeleton_hits > 0);
}

#[test]
fn hyperscale_subset_churn_matches_cold_plans_bit_for_bit() {
    // Random roster subsets with single-slot churn (the hyperscale regime,
    // shrunk to 32 GPUs to keep the test fast). Includes shallow/deep mixes
    // so partial level reuse paths are exercised too.
    let cluster = ClusterSpec::homogeneous(4, 8);
    let mut warm = SpindleSession::new(cluster.clone());
    let mut rng = XorShift64Star::new(0x48FF);
    let mut active: Vec<bool> = (0..HYPERSCALE_ROSTER).map(|s| s < 10).collect();
    for step in 0..12 {
        let slots: Vec<usize> = (0..HYPERSCALE_ROSTER).filter(|&s| active[s]).collect();
        let graph = hyperscale_subset(&slots).unwrap();
        let outcome = warm.replan(&graph).unwrap();
        let cold = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
        assert_plans_identical(&outcome.plan, &cold, &format!("hyperscale step {step}"));
        assert_eq!(outcome.levels_total, cold.metagraph().levels().len());
        // Toggle one random slot (keep at least 4 active).
        let slot = (rng.next_u64() % HYPERSCALE_ROSTER as u64) as usize;
        let can_deactivate = active[slot] && active.iter().filter(|&&a| a).count() > 4;
        active[slot] = !can_deactivate;
    }
}

#[test]
fn levels_reused_is_zero_cold_and_positive_after_single_task_churn() {
    let cluster = ClusterSpec::homogeneous(4, 8);
    let mut session = SpindleSession::new(cluster);
    let ten = multitask_clip(10).unwrap();
    let nine = multitask_clip(9).unwrap();

    let cold = session.replan(&ten).unwrap();
    assert_eq!(cold.levels_reused, 0, "a cold plan has nothing to reuse");
    assert!(cold.levels_total > 0);
    assert!(!cold.placement_reused);
    assert!((cold.level_reuse_rate()).abs() < 1e-12);

    // First visit of the churned mix: its levels all differ from the 10-task
    // plan's (every level contains the departed task), so it seeds the cache.
    let churn1 = session.replan(&nine).unwrap();
    assert!(churn1.warm, "no new curve fits for a shrunk task mix");

    // The mix churns back and forth — the recurring pattern of dynamic
    // schedules. From now on every single-task-churn re-plan is served
    // structurally: all levels spliced, placement reused wholesale.
    for outcome in [
        session.replan(&ten).unwrap(),
        session.replan(&nine).unwrap(),
        session.replan(&ten).unwrap(),
    ] {
        assert_eq!(outcome.levels_reused, outcome.levels_total);
        assert!(outcome.levels_reused > 0);
        assert!(outcome.placement_reused);
        assert!((outcome.level_reuse_rate() - 1.0).abs() < 1e-12);
    }
}

#[test]
fn shallow_churn_reuses_deep_only_levels_on_first_sight() {
    // Roster slot 0 is deep (levels 0–3), slot 1 is shallow (levels 0–1).
    // Removing a *shallow* task perturbs only the levels it participates in;
    // the deep-only levels 2–3 must be spliced from the cache even though
    // this exact task mix was never planned before.
    let cluster = ClusterSpec::homogeneous(4, 8);
    let mut session = SpindleSession::new(cluster);
    let slots: Vec<usize> = (0..12).collect();
    let full = hyperscale_subset(&slots).unwrap();
    let contracted_levels = |g: &ComputationGraph| {
        SpindleSession::new(ClusterSpec::homogeneous(4, 8))
            .contract(g)
            .metagraph()
            .levels()
            .len()
    };
    assert_eq!(contracted_levels(&full), 4, "deep tasks span four levels");

    session.replan(&full).unwrap();
    let without_shallow: Vec<usize> = slots.iter().copied().filter(|&s| s != 1).collect();
    let churned = hyperscale_subset(&without_shallow).unwrap();
    let outcome = session.replan(&churned).unwrap();
    assert_eq!(outcome.levels_total, 4);
    assert_eq!(
        outcome.levels_reused, 2,
        "the two deep-only levels are untouched by shallow churn"
    );
    assert!(
        !outcome.placement_reused,
        "placement is global: must re-run"
    );

    // Removing a *deep* task instead dirties every level.
    session.replan(&full).unwrap();
    let without_deep: Vec<usize> = slots.iter().copied().filter(|&s| s != 0).collect();
    let churned = hyperscale_subset(&without_deep).unwrap();
    let outcome = session.replan(&churned).unwrap();
    assert_eq!(outcome.levels_reused, 0);
}

#[test]
fn hyperscale_churn_schedule_replans_identically_and_reuses_structure() {
    // The full churn-trace artifact at reduced scale: drive the seeded
    // arrival schedule through a warm session and check both equivalence and
    // accumulated structural reuse.
    let schedule = hyperscale_churn(7, 10, 8, 25.0).unwrap();
    let cluster = ClusterSpec::homogeneous(4, 8);
    let mut warm = SpindleSession::new(cluster.clone());
    let mut reused_levels = 0usize;
    for arrival in schedule.arrivals() {
        let outcome = warm.replan(&arrival.graph).unwrap();
        let cold = SpindleSession::new(cluster.clone())
            .plan(&arrival.graph)
            .unwrap();
        assert_plans_identical(&outcome.plan, &cold, &arrival.label);
        reused_levels += outcome.levels_reused;
    }
    assert!(
        reused_levels > 0,
        "a churn trace with single-task deltas must reuse levels"
    );
}

#[test]
fn disabling_the_structural_cache_changes_cost_not_output() {
    let cluster = ClusterSpec::homogeneous(4, 8);
    let graph = multitask_clip(7).unwrap();
    let mut cached = SpindleSession::new(cluster.clone());
    cached.plan(&graph).unwrap();
    let via_cache = cached.replan(&graph).unwrap();
    assert!(via_cache.placement_reused);

    let mut uncached = SpindleSession::with_config(
        cluster,
        PlannerConfig {
            structural_cache: false,
            ..PlannerConfig::default()
        },
    );
    uncached.plan(&graph).unwrap();
    let full = uncached.replan(&graph).unwrap();
    assert_eq!(full.levels_reused, 0);
    assert!(!full.placement_reused);
    assert_plans_identical(&via_cache.plan, &full.plan, "cache on vs off");
}
