//! Property-style tests of the planner's core invariants, driven by randomly
//! generated multi-task workloads and cluster shapes.
//!
//! The offline build environment has no `proptest`, so the generator is a
//! small deterministic xorshift PRNG: every run explores the same fixed set of
//! random workloads, which keeps failures reproducible by construction.

use spindle_cluster::ClusterSpec;
use spindle_core::{MetaGraph, SpindleSession};
use spindle_graph::{ComputationGraph, GraphBuilder, Modality, OpKind, TensorShape};
use spindle_runtime::RuntimeEngine;

/// Deterministic xorshift64* PRNG — a stand-in for proptest's generators.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[self.range(0, options.len() as u64) as usize]
    }
}

/// A randomly shaped contrastive task: modality pair, batch, tower depths.
#[derive(Debug, Clone)]
struct RandomTask {
    modality: Modality,
    batch: u32,
    seq: u32,
    hidden: u32,
    layers_a: usize,
    layers_b: usize,
}

fn random_task(rng: &mut Rng) -> RandomTask {
    RandomTask {
        modality: rng.pick(&[
            Modality::Vision,
            Modality::Audio,
            Modality::Depth,
            Modality::Thermal,
            Modality::Motion,
        ]),
        batch: rng.pick(&[4u32, 8, 16, 32, 48]),
        seq: rng.range(16, 512) as u32,
        hidden: rng.pick(&[512u32, 768, 1024]),
        layers_a: rng.range(1, 12) as usize,
        layers_b: rng.range(1, 12) as usize,
    }
}

fn random_tasks(rng: &mut Rng, max_tasks: u64) -> Vec<RandomTask> {
    let n = rng.range(1, max_tasks);
    (0..n).map(|_| random_task(rng)).collect()
}

fn build_graph(tasks: &[RandomTask]) -> ComputationGraph {
    let mut b = GraphBuilder::new();
    for (i, t) in tasks.iter().enumerate() {
        let task = b.add_task(format!("task{i}"), [t.modality, Modality::Text], t.batch);
        let tower = b
            .add_op_chain(
                task,
                OpKind::Encoder(t.modality),
                TensorShape::new(t.batch, t.seq, t.hidden),
                t.layers_a,
            )
            .expect("valid chain");
        let text = b
            .add_op_chain(
                task,
                OpKind::Encoder(Modality::Text),
                TensorShape::new(t.batch, 77, t.hidden),
                t.layers_b,
            )
            .expect("valid chain");
        let loss = b
            .add_op(
                task,
                OpKind::ContrastiveLoss,
                TensorShape::new(t.batch, 1, t.hidden),
            )
            .expect("valid op");
        b.add_flow(*tower.last().unwrap(), loss).expect("flow");
        b.add_flow(*text.last().unwrap(), loss).expect("flow");
    }
    b.build().expect("graph builds")
}

/// Graph contraction never loses or duplicates operators, and MetaLevels
/// never contain dependent MetaOps.
#[test]
fn contraction_preserves_operators() {
    let mut rng = Rng::new(0x5eed_0001);
    for case in 0..24 {
        let tasks = random_tasks(&mut rng, 5);
        let graph = build_graph(&tasks);
        let metagraph = MetaGraph::contract(&graph);
        assert_eq!(metagraph.total_ops(), graph.num_ops(), "case {case}");
        // Every operator maps to exactly one MetaOp.
        for op in graph.ops() {
            assert!(metagraph.metaop_of(op.id()).is_some(), "case {case}");
        }
        // Edges always go from a lower to a strictly higher level.
        for &(a, b) in metagraph.edges() {
            assert!(
                metagraph.metaop(a).level() < metagraph.metaop(b).level(),
                "case {case}: {a} -> {b}"
            );
        }
    }
}

/// Every plan produced by the session passes validation: full coverage of
/// all operators, per-wave capacity, disjoint placements, and a makespan
/// no better than the theoretical optimum.
#[test]
fn plans_are_always_valid() {
    let mut rng = Rng::new(0x5eed_0002);
    for case in 0..24 {
        let tasks = random_tasks(&mut rng, 4);
        let nodes = rng.range(1, 3) as usize;
        let graph = build_graph(&tasks);
        let cluster = ClusterSpec::homogeneous(nodes, 8);
        let plan = SpindleSession::new(cluster.clone())
            .plan(&graph)
            .expect("plan");
        assert!(
            plan.validate().is_ok(),
            "case {case}: {:?}",
            plan.validate()
        );
        assert!(plan.require_placement().is_ok(), "case {case}");
        assert!(plan.makespan() > 0.0, "case {case}");
        assert!(
            plan.makespan() + 1e-9 >= plan.theoretical_optimum() * 0.99,
            "case {case}"
        );
        // Devices used by any wave never exceed the cluster.
        for wave in plan.waves() {
            assert!(
                wave.devices_used() <= cluster.num_devices() as u32,
                "case {case}"
            );
        }
    }
}

/// The simulated iteration is internally consistent: the breakdown sums to
/// the iteration time, every device appears in the metrics, and total
/// FLOPs match the workload exactly.
#[test]
fn simulation_is_consistent() {
    let mut rng = Rng::new(0x5eed_0003);
    let cluster = ClusterSpec::homogeneous(1, 8);
    // One warm session across cases: cache reuse must never change results.
    let mut session = SpindleSession::new(cluster.clone());
    for case in 0..24 {
        let tasks = random_tasks(&mut rng, 4);
        let graph = build_graph(&tasks);
        let plan = session.plan(&graph).expect("plan");
        let report = RuntimeEngine::new(&plan, &cluster)
            .with_graph(&graph)
            .run_iteration()
            .expect("simulation");
        let b = report.breakdown();
        assert!(
            (b.total_s() - report.iteration_time_s()).abs() < 1e-12,
            "case {case}"
        );
        assert_eq!(report.device_utilization().len(), 8, "case {case}");
        assert_eq!(report.device_memory().len(), 8, "case {case}");
        let expected = graph.total_flops();
        assert!(
            (report.total_flops() - expected).abs() / expected < 1e-9,
            "case {case}"
        );
        for util in report.device_utilization().values() {
            assert!((0.0..=1.0).contains(util), "case {case}");
        }
    }
}
