//! Property-based tests of the planner's core invariants, driven by randomly
//! generated multi-task workloads and cluster shapes.

use proptest::prelude::*;
use spindle_cluster::ClusterSpec;
use spindle_core::{MetaGraph, Planner};
use spindle_graph::{ComputationGraph, GraphBuilder, Modality, OpKind, TensorShape};
use spindle_runtime::RuntimeEngine;

/// A randomly shaped contrastive task: modality pair, batch, tower depths.
#[derive(Debug, Clone)]
struct RandomTask {
    modality: Modality,
    batch: u32,
    seq: u32,
    hidden_index: usize,
    layers_a: usize,
    layers_b: usize,
}

fn task_strategy() -> impl Strategy<Value = RandomTask> {
    (
        prop_oneof![
            Just(Modality::Vision),
            Just(Modality::Audio),
            Just(Modality::Depth),
            Just(Modality::Thermal),
            Just(Modality::Motion),
        ],
        prop_oneof![Just(4u32), Just(8), Just(16), Just(32), Just(48)],
        16u32..512,
        0usize..3,
        1usize..12,
        1usize..12,
    )
        .prop_map(
            |(modality, batch, seq, hidden_index, layers_a, layers_b)| RandomTask {
                modality,
                batch,
                seq,
                hidden_index,
                layers_a,
                layers_b,
            },
        )
}

fn build_graph(tasks: &[RandomTask]) -> ComputationGraph {
    const HIDDENS: [u32; 3] = [512, 768, 1024];
    let mut b = GraphBuilder::new();
    for (i, t) in tasks.iter().enumerate() {
        let task = b.add_task(format!("task{i}"), [t.modality, Modality::Text], t.batch);
        let hidden = HIDDENS[t.hidden_index];
        let tower = b
            .add_op_chain(
                task,
                OpKind::Encoder(t.modality),
                TensorShape::new(t.batch, t.seq, hidden),
                t.layers_a,
            )
            .expect("valid chain");
        let text = b
            .add_op_chain(
                task,
                OpKind::Encoder(Modality::Text),
                TensorShape::new(t.batch, 77, hidden),
                t.layers_b,
            )
            .expect("valid chain");
        let loss = b
            .add_op(task, OpKind::ContrastiveLoss, TensorShape::new(t.batch, 1, hidden))
            .expect("valid op");
        b.add_flow(*tower.last().unwrap(), loss).expect("flow");
        b.add_flow(*text.last().unwrap(), loss).expect("flow");
    }
    b.build().expect("graph builds")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Graph contraction never loses or duplicates operators, and MetaLevels
    /// never contain dependent MetaOps.
    #[test]
    fn contraction_preserves_operators(tasks in prop::collection::vec(task_strategy(), 1..5)) {
        let graph = build_graph(&tasks);
        let metagraph = MetaGraph::contract(&graph);
        prop_assert_eq!(metagraph.total_ops(), graph.num_ops());
        // Every operator maps to exactly one MetaOp.
        for op in graph.ops() {
            prop_assert!(metagraph.metaop_of(op.id()).is_some());
        }
        // Edges always go from a lower to a strictly higher level.
        for &(a, b) in metagraph.edges() {
            prop_assert!(metagraph.metaop(a).level() < metagraph.metaop(b).level());
        }
    }

    /// Every plan produced by the planner passes validation: full coverage of
    /// all operators, per-wave capacity, disjoint placements, and a makespan
    /// no better than the theoretical optimum.
    #[test]
    fn plans_are_always_valid(
        tasks in prop::collection::vec(task_strategy(), 1..4),
        nodes in 1usize..3,
    ) {
        let graph = build_graph(&tasks);
        let cluster = ClusterSpec::homogeneous(nodes, 8);
        let plan = Planner::new(&graph, &cluster).plan().expect("plan");
        prop_assert!(plan.validate().is_ok());
        prop_assert!(plan.require_placement().is_ok());
        prop_assert!(plan.makespan() > 0.0);
        prop_assert!(plan.makespan() + 1e-9 >= plan.theoretical_optimum() * 0.99);
        // Devices used by any wave never exceed the cluster.
        for wave in plan.waves() {
            prop_assert!(wave.devices_used() <= cluster.num_devices() as u32);
        }
    }

    /// The simulated iteration is internally consistent: the breakdown sums to
    /// the iteration time, every device appears in the metrics, and total
    /// FLOPs match the workload exactly.
    #[test]
    fn simulation_is_consistent(
        tasks in prop::collection::vec(task_strategy(), 1..4),
    ) {
        let graph = build_graph(&tasks);
        let cluster = ClusterSpec::homogeneous(1, 8);
        let plan = Planner::new(&graph, &cluster).plan().expect("plan");
        let report = RuntimeEngine::new(&plan, &cluster)
            .with_graph(&graph)
            .run_iteration()
            .expect("simulation");
        let b = report.breakdown();
        prop_assert!((b.total_s() - report.iteration_time_s()).abs() < 1e-12);
        prop_assert_eq!(report.device_utilization().len(), 8);
        prop_assert_eq!(report.device_memory().len(), 8);
        let expected = graph.total_flops();
        prop_assert!((report.total_flops() - expected).abs() / expected < 1e-9);
        for util in report.device_utilization().values() {
            prop_assert!((0.0..=1.0).contains(util));
        }
    }
}
