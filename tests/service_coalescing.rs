//! Coalescing equivalence: folding a burst of K churn events for one tenant
//! into a single re-plan of the *latest* graph must produce a plan
//! bit-identical to applying the K events sequentially (one re-plan each) and
//! keeping the last result. This is the safety proof behind the service's
//! coalescing queue — collapsing a burst changes cost, never output.

use std::sync::Arc;
use std::time::Instant;

use spindle::prelude::*;
use spindle::service::CoalescingQueue;
use spindle::workloads::{hyperscale_subset, HYPERSCALE_ROSTER};
use spindle_cluster::ClusterSpec;
use spindle_graph::{ComputationGraph, XorShift64Star};

/// Asserts bit-for-bit plan equality (waves include placement and all
/// floating-point schedule fields via `PartialEq`).
fn assert_plans_identical(coalesced: &ExecutionPlan, sequential: &ExecutionPlan, context: &str) {
    assert_eq!(
        coalesced.num_waves(),
        sequential.num_waves(),
        "wave count diverged: {context}"
    );
    assert_eq!(
        coalesced.waves(),
        sequential.waves(),
        "waves diverged: {context}"
    );
    assert!(
        coalesced.makespan().to_bits() == sequential.makespan().to_bits(),
        "makespan diverged: {context}"
    );
    assert!(
        coalesced.theoretical_optimum().to_bits() == sequential.theoretical_optimum().to_bits(),
        "theoretical optimum diverged: {context}"
    );
}

/// Seeded single-slot churn over the hyperscale roster: each step toggles one
/// random slot (keeping at least 4 active) and yields the resulting graph.
fn churn_burst(
    rng: &mut XorShift64Star,
    active: &mut [bool],
    k: usize,
) -> Vec<Arc<ComputationGraph>> {
    let mut burst = Vec::with_capacity(k);
    for _ in 0..k {
        let slot = (rng.next_u64() % HYPERSCALE_ROSTER as u64) as usize;
        let can_deactivate = active[slot] && active.iter().filter(|&&a| a).count() > 4;
        active[slot] = !can_deactivate;
        let slots: Vec<usize> = (0..HYPERSCALE_ROSTER).filter(|&s| active[s]).collect();
        burst.push(Arc::new(hyperscale_subset(&slots).unwrap()));
    }
    burst
}

#[test]
fn coalesced_burst_plans_bit_identical_to_sequential_replans() {
    // Two warm sessions start from the same prefix. A burst of K churn events
    // arrives: the sequential session re-plans each event; the coalesced
    // session folds the burst through a CoalescingQueue (exactly the
    // structure the service workers drain into) and re-plans once.
    let cluster = ClusterSpec::homogeneous(4, 8);
    let mut sequential = SpindleSession::new(cluster.clone());
    let mut coalesced = SpindleSession::new(cluster.clone());
    let mut rng = XorShift64Star::new(0x5EAF00D);
    let mut active: Vec<bool> = (0..HYPERSCALE_ROSTER).map(|s| s < 10).collect();

    // Shared warm prefix.
    let prefix: Vec<usize> = (0..HYPERSCALE_ROSTER).filter(|&s| active[s]).collect();
    let warmup = Arc::new(hyperscale_subset(&prefix).unwrap());
    sequential.replan(&warmup).unwrap();
    coalesced.replan(&warmup).unwrap();

    for (round, k) in [2usize, 5, 9, 3].into_iter().enumerate() {
        let burst = churn_burst(&mut rng, &mut active, k);

        let mut last_sequential = None;
        for graph in &burst {
            last_sequential = Some(sequential.replan(graph).unwrap().plan);
        }
        let last_sequential = last_sequential.unwrap();

        let mut queue = CoalescingQueue::new();
        let now = Instant::now();
        for graph in &burst {
            queue.push(7, Arc::clone(graph), now);
        }
        let folded = queue.pop().expect("a non-empty burst folds to one re-plan");
        assert_eq!(folded.coalesced, k, "the whole burst folds into one entry");
        assert!(queue.pop().is_none(), "one tenant, one folded entry");
        let outcome = coalesced.replan(&folded.graph).unwrap();

        assert_plans_identical(
            &outcome.plan,
            &last_sequential,
            &format!("round {round}, burst of {k}"),
        );
        outcome.plan.validate().unwrap();
    }
}

#[test]
fn interleaved_tenants_coalesce_independently_and_identically() {
    // Bursts from several tenants interleave in one queue; folding must keep
    // per-tenant latest-wins semantics, and each tenant's single re-plan must
    // equal its own sequential replay.
    let cluster = ClusterSpec::homogeneous(4, 8);
    let mut rng = XorShift64Star::new(0xBEE);
    let tenants = 3usize;
    let mut actives: Vec<Vec<bool>> = (0..tenants)
        .map(|t| (0..HYPERSCALE_ROSTER).map(|s| s < 8 + t).collect())
        .collect();

    // Per-tenant event streams, interleaved round-robin into the queue.
    let bursts: Vec<Vec<Arc<ComputationGraph>>> = actives
        .iter_mut()
        .map(|active| churn_burst(&mut rng, active, 4))
        .collect();
    let mut queue = CoalescingQueue::new();
    let now = Instant::now();
    for step in 0..4 {
        for (tenant, burst) in bursts.iter().enumerate() {
            queue.push(tenant as u64, Arc::clone(&burst[step]), now);
        }
    }
    assert_eq!(queue.len(), tenants, "one folded entry per tenant");

    while let Some(folded) = queue.pop() {
        let tenant = folded.tenant as usize;
        assert_eq!(folded.coalesced, 4);

        let mut sequential = SpindleSession::new(cluster.clone());
        let mut last = None;
        for graph in &bursts[tenant] {
            last = Some(sequential.replan(graph).unwrap().plan);
        }
        let single = SpindleSession::new(cluster.clone())
            .plan(&folded.graph)
            .unwrap();
        assert_plans_identical(
            &single,
            &last.unwrap(),
            &format!("tenant {tenant} interleaved burst"),
        );
    }
    assert!((queue.coalescing_ratio() - 4.0).abs() < 1e-12);
}
