//! Integration tests of per-tenant fairness: admission throttling caps a
//! chatty tenant's intake, and weighted deficit-round-robin drain keeps
//! quiet tenants live while a chatty one hammers the service.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use spindle::cluster::ClusterSpec;
use spindle::graph::{ComputationGraph, GraphBuilder, Modality, OpKind, TensorShape};
use spindle::service::{FairnessConfig, PlanService, ServiceConfig, SubmitError, TenantPolicy};
use spindle::workloads::TenantFleet;

fn graph(batch: u32) -> Arc<ComputationGraph> {
    let mut b = GraphBuilder::new();
    let t = b.add_task("t", [Modality::Vision, Modality::Text], batch);
    let tower = b
        .add_op_chain(
            t,
            OpKind::Encoder(Modality::Vision),
            TensorShape::new(batch, 197, 768),
            4,
        )
        .unwrap();
    let loss = b
        .add_op(t, OpKind::ContrastiveLoss, TensorShape::new(batch, 1, 768))
        .unwrap();
    b.add_flow(*tower.last().unwrap(), loss).unwrap();
    Arc::new(b.build().unwrap())
}

#[test]
fn chatty_fleet_gives_tenant_zero_a_denser_trace() {
    let quiet = TenantFleet::clip_fleet(7, 6, 4, 30.0).unwrap();
    let chatty = TenantFleet::chatty_clip_fleet(7, 6, 4, 30.0, 10).unwrap();
    let count = |fleet: &TenantFleet, tenant: usize| {
        fleet.events().iter().filter(|e| e.tenant == tenant).count()
    };
    assert_eq!(count(&chatty, 0), 10 * count(&quiet, 0));
    for tenant in 1..6 {
        assert_eq!(count(&chatty, tenant), count(&quiet, tenant));
    }
    // Chatty trace stays sorted by arrival time — replayable as-is.
    let times: Vec<f64> = chatty.events().iter().map(|e| e.at_s).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn throttle_caps_a_chatty_tenant_without_touching_the_quiet_ones() {
    // Tenant 0 is rate-limited hard; tenants 1..=5 are unlimited. Replaying
    // a 10:1 chatty trace open-loop (no retries for throttled events) must
    // admit every quiet event while holding tenant 0 near its burst.
    let fleet = TenantFleet::chatty_clip_fleet(11, 6, 4, 30.0, 10).unwrap();
    let chatty_policy = TenantPolicy {
        rate: 0.5,
        burst: 2.0,
        ..TenantPolicy::unlimited()
    };
    let (service, completions) = PlanService::start(
        ClusterSpec::homogeneous(2, 8),
        ServiceConfig {
            workers: 1,
            queue_depth: 256,
            fairness: FairnessConfig {
                overrides: HashMap::from([(0u64, chatty_policy)]),
                ..FairnessConfig::default()
            },
            ..ServiceConfig::default()
        },
    );

    let mut admitted_chatty = 0u64;
    let mut throttled_chatty = 0u64;
    let mut admitted_quiet = 0u64;
    for event in fleet.events() {
        match service.submit(event.tenant as u64, Arc::clone(&event.graph)) {
            Ok(()) => {
                if event.tenant == 0 {
                    admitted_chatty += 1;
                } else {
                    admitted_quiet += 1;
                }
            }
            Err(SubmitError::Throttled { retry_hint }) => {
                assert_eq!(event.tenant, 0, "only tenant 0 is limited");
                assert!(retry_hint > Duration::ZERO);
                throttled_chatty += 1;
            }
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }

    let quiet_events = fleet.events().iter().filter(|e| e.tenant != 0).count() as u64;
    assert_eq!(admitted_quiet, quiet_events, "quiet tenants sail through");
    assert!(throttled_chatty > 0, "the chatty tenant must hit its limit");
    // Burst 2 plus at most a handful of refill tokens over the (short)
    // submission loop: far below the 40 events it attempted.
    assert!(
        admitted_chatty <= 10,
        "admitted {admitted_chatty} chatty events despite rate 0.5/s burst 2"
    );

    let stats = service.shutdown();
    assert_eq!(stats.throttled, throttled_chatty);
    assert_eq!(stats.submitted, admitted_chatty + admitted_quiet);
    assert_eq!(stats.errors, 0);
    let served: u64 = completions.iter().map(|c| c.coalesced as u64).sum();
    assert_eq!(served, admitted_chatty + admitted_quiet);
}

#[test]
fn weighted_drr_keeps_quiet_tenants_live_under_chatty_load() {
    // One worker, DRR drain (quantum > 0), quiet tenants weighted 8x. A
    // dedicated thread hammers tenant 0 as fast as the queue accepts while
    // five quiet tenants each submit a handful of events; every quiet event
    // must complete even though tenant 0 never stops.
    let quiet_policy = TenantPolicy {
        weight: 8,
        ..TenantPolicy::unlimited()
    };
    let (service, completions) = PlanService::start(
        ClusterSpec::homogeneous(1, 8),
        ServiceConfig {
            workers: 1,
            queue_depth: 4,
            fairness: FairnessConfig {
                quantum: 4,
                overrides: (1..=5u64).map(|t| (t, quiet_policy)).collect(),
                ..FairnessConfig::default()
            },
            ..ServiceConfig::default()
        },
    );
    let service = Arc::new(service);
    let stop = Arc::new(AtomicBool::new(false));
    let chatty_accepted = Arc::new(AtomicU64::new(0));

    let hammer = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let chatty_accepted = Arc::clone(&chatty_accepted);
        std::thread::spawn(move || {
            let g = graph(8);
            while !stop.load(Ordering::Relaxed) {
                match service.submit(0, Arc::clone(&g)) {
                    Ok(()) => {
                        chatty_accepted.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(SubmitError::QueueFull { .. }) => std::thread::yield_now(),
                    Err(other) => panic!("chatty tenant hit {other}"),
                }
            }
        })
    };

    let mut quiet_accepted = 0u64;
    for round in 0..4u32 {
        for tenant in 1..=5u64 {
            let g = graph(8 + round * 8);
            loop {
                match service.submit(tenant, Arc::clone(&g)) {
                    Ok(()) => {
                        quiet_accepted += 1;
                        break;
                    }
                    Err(SubmitError::QueueFull { retry_hint }) => {
                        std::thread::sleep(retry_hint.min(Duration::from_millis(1)));
                    }
                    Err(other) => panic!("quiet tenant hit {other}"),
                }
            }
        }
    }

    // Every accepted quiet event completes while the hammer is still
    // running — the chatty tenant cannot starve them out of the worker.
    let mut quiet_served = 0u64;
    let mut chatty_served = 0u64;
    while quiet_served < quiet_accepted {
        let done = completions
            .recv_timeout(Duration::from_secs(30))
            .expect("quiet tenants starved by the chatty one");
        done.result.expect("re-plan succeeds");
        if done.tenant == 0 {
            chatty_served += done.coalesced as u64;
        } else {
            quiet_served += done.coalesced as u64;
        }
    }
    assert_eq!(quiet_served, quiet_accepted);

    stop.store(true, Ordering::Relaxed);
    hammer.join().unwrap();
    let stats = Arc::try_unwrap(service)
        .expect("all clones dropped")
        .shutdown();
    assert_eq!(stats.errors, 0);

    // The chatty tenant still made progress (coalesced, not blocked).
    let tail: u64 = completions
        .iter()
        .map(|c| {
            assert_eq!(c.tenant, 0, "all quiet events were already drained");
            c.coalesced as u64
        })
        .sum();
    chatty_served += tail;
    assert_eq!(chatty_served, chatty_accepted.load(Ordering::Relaxed));
    assert_eq!(stats.submitted, quiet_served + chatty_served);
}
