//! Integration tests of hot re-sharding: `PlanService::resize` under
//! concurrent load must lose nothing, and migrated tenants must keep their
//! warm session caches.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use spindle::cluster::ClusterSpec;
use spindle::graph::{ComputationGraph, GraphBuilder, Modality, OpKind, TensorShape};
use spindle::service::{PlanService, ReplanSummary, ServiceConfig, SubmitError};

fn graph(batch: u32) -> Arc<ComputationGraph> {
    let mut b = GraphBuilder::new();
    let t = b.add_task("t", [Modality::Vision, Modality::Text], batch);
    let tower = b
        .add_op_chain(
            t,
            OpKind::Encoder(Modality::Vision),
            TensorShape::new(batch, 197, 768),
            4,
        )
        .unwrap();
    let loss = b
        .add_op(t, OpKind::ContrastiveLoss, TensorShape::new(batch, 1, 768))
        .unwrap();
    b.add_flow(*tower.last().unwrap(), loss).unwrap();
    Arc::new(b.build().unwrap())
}

#[test]
fn resize_under_concurrent_load_loses_zero_accepted_submissions() {
    let (service, completions) = PlanService::start(
        ClusterSpec::homogeneous(1, 8),
        ServiceConfig {
            workers: 2,
            queue_depth: 8,
            ..ServiceConfig::default()
        },
    );
    let service = Arc::new(service);
    let accepted = Arc::new(AtomicU64::new(0));
    let done_submitting = Arc::new(AtomicBool::new(false));

    // Two submitter threads hammer the service across 8 tenants while the
    // main thread re-shards it repeatedly. Every Ok(()) is an accepted
    // submission the service owes us a completion for.
    let submitters: Vec<_> = (0..2u64)
        .map(|half| {
            let service = Arc::clone(&service);
            let accepted = Arc::clone(&accepted);
            std::thread::spawn(move || {
                for round in 0..12u32 {
                    for tenant in (half * 4)..(half * 4 + 4) {
                        let g = graph(8 + (round % 4) * 8);
                        loop {
                            match service.submit(tenant, Arc::clone(&g)) {
                                Ok(()) => {
                                    accepted.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                Err(SubmitError::QueueFull { retry_hint }) => {
                                    std::thread::sleep(retry_hint.min(Duration::from_millis(2)));
                                }
                                Err(other) => panic!("service must stay alive: {other}"),
                            }
                        }
                    }
                }
            })
        })
        .collect();

    // Re-shard while the submitters are running: grow, shrink, grow again.
    let mut total_moves = 0;
    while !done_submitting.load(Ordering::Relaxed) {
        for workers in [4usize, 1, 3, 2] {
            total_moves += service.resize(workers);
            assert_eq!(service.num_workers(), workers);
        }
        if submitters.iter().all(std::thread::JoinHandle::is_finished) {
            done_submitting.store(true, Ordering::Relaxed);
        }
    }
    for s in submitters {
        s.join().unwrap();
    }

    let accepted = accepted.load(Ordering::Relaxed);
    assert_eq!(accepted, 2 * 12 * 4, "every submission eventually accepted");
    let stats = Arc::try_unwrap(service)
        .expect("all clones dropped")
        .shutdown();
    assert_eq!(stats.errors, 0, "no re-plan may fail across re-shards");

    let mut served = 0u64;
    for done in completions.iter() {
        served += done.coalesced as u64;
        done.result.expect("every re-plan succeeds");
    }
    assert_eq!(
        served, accepted,
        "an accepted submission was lost during resize"
    );
    // Only sanity-bound the migration volume: each resize moves at most the
    // live tenant population (8), never more.
    assert!(total_moves <= 8 * 4 * 12, "moves: {total_moves}");
}

#[test]
fn migrated_tenants_keep_their_warm_caches() {
    let (service, completions) = PlanService::start(
        ClusterSpec::homogeneous(1, 8),
        ServiceConfig {
            workers: 3,
            queue_depth: 16,
            ..ServiceConfig::default()
        },
    );
    // Warm six tenants spread over three workers.
    let g = graph(16);
    for tenant in 0..6u64 {
        service.submit(tenant, Arc::clone(&g)).unwrap();
    }
    let mut cold_fingerprints = std::collections::BTreeMap::new();
    for _ in 0..6 {
        let done = completions
            .recv_timeout(Duration::from_secs(30))
            .expect("cold completion");
        let outcome = done.result.expect("cold plan succeeds");
        cold_fingerprints.insert(done.tenant, ReplanSummary::of(&outcome).plan_fingerprint);
    }

    // Shrink to one worker: every tenant that lived on workers 1 and 2
    // migrates, sessions and caches riding along.
    let moved = service.resize(1);
    assert!(moved > 0, "shrinking 3->1 must migrate someone");
    assert!(moved <= 6);

    // Re-planning the identical graph must be cache-served for *every*
    // tenant — migration preserved the warm session state bit for bit.
    for tenant in 0..6u64 {
        service.submit(tenant, Arc::clone(&g)).unwrap();
    }
    for _ in 0..6 {
        let done = completions
            .recv_timeout(Duration::from_secs(30))
            .expect("warm completion");
        let outcome = done.result.expect("warm plan succeeds");
        assert!(
            outcome.warm,
            "tenant {} lost its curve cache in the move",
            done.tenant
        );
        assert!(
            outcome.placement_reused,
            "tenant {} lost its structural cache in the move",
            done.tenant
        );
        assert_eq!(
            ReplanSummary::of(&outcome).plan_fingerprint,
            cold_fingerprints[&done.tenant],
            "tenant {} re-planned differently after migrating",
            done.tenant
        );
    }
    let stats = service.shutdown();
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.replans, 12);
}
