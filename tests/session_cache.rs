//! Session curve-cache behaviour across plan revisions — the property that
//! makes `SpindleSession` the right API for dynamic multi-task training
//! (paper Appendix D): re-planning a mutated workload reuses cached scaling
//! curves for every unchanged operator signature, verified through the
//! estimator's fit-count probe.

use spindle::baselines::SystemKind;
use spindle::prelude::*;
use spindle::workloads::DynamicWorkload;
use spindle_cluster::ClusterSpec;

#[test]
fn warm_replan_of_the_same_workload_performs_zero_fits() {
    let graph = multitask_clip(4).unwrap();
    let mut session = SpindleSession::new(ClusterSpec::homogeneous(2, 8));
    let cold = session.plan(&graph).unwrap();
    let fits_after_cold = session.curve_fits();
    assert!(fits_after_cold > 0, "the cold plan must fit curves");

    let warm = session.plan(&graph).unwrap();
    assert_eq!(
        session.curve_fits(),
        fits_after_cold,
        "re-planning an unchanged workload must not fit any curve"
    );
    assert!(session.cache_stats().hits > 0);

    // Cold and warm plans are identical in every scheduling decision.
    assert_eq!(cold.waves(), warm.waves());
    assert_eq!(cold.num_devices(), warm.num_devices());
    assert!((cold.makespan() - warm.makespan()).abs() < 1e-15);
    assert!((cold.theoretical_optimum() - warm.theoretical_optimum()).abs() < 1e-15);
}

#[test]
fn mutated_workload_only_fits_new_signatures() {
    // Growing Multitask-CLIP from 4 to 7 tasks adds tasks whose towers have
    // new batch/shape combinations but reuses the 4-task ones; the session
    // must fit curves only for the genuinely new operator signatures.
    let mut session = SpindleSession::new(ClusterSpec::homogeneous(2, 8));
    session.plan(&multitask_clip(4).unwrap()).unwrap();
    let fits_4t = session.curve_fits();

    // Independently measure how many distinct signatures each workload has.
    let mut fresh = SpindleSession::new(ClusterSpec::homogeneous(2, 8));
    fresh.plan(&multitask_clip(7).unwrap()).unwrap();
    let signatures_7t = fresh.curve_fits();

    session.plan(&multitask_clip(7).unwrap()).unwrap();
    let new_fits = session.curve_fits() - fits_4t;
    assert!(new_fits > 0, "7 tasks introduce new operator signatures");
    assert!(
        new_fits < signatures_7t,
        "shared signatures must come from the cache ({new_fits} new fits vs {signatures_7t} total)"
    );
    assert_eq!(
        session.curve_fits(),
        signatures_7t,
        "warm 4t+7t fits exactly the union of distinct signatures"
    );
}

#[test]
fn dynamic_schedule_phases_with_known_signatures_replan_fit_free() {
    // The Fig. 13 dynamic schedule: 4 -> 7 -> 10 -> 7 tasks. The final phase
    // shrinks back to a task mix whose operator signatures were all seen in
    // earlier phases, so its re-plan must perform zero new curve fits.
    let schedule = DynamicWorkload::multitask_clip_schedule().unwrap();
    let mut session = SpindleSession::new(ClusterSpec::homogeneous(2, 8));
    let mut fits_per_phase = Vec::new();
    for phase in schedule.phases() {
        let before = session.curve_fits();
        let plan = session.plan(&phase.graph).unwrap();
        plan.validate().unwrap();
        fits_per_phase.push(session.curve_fits() - before);
    }
    assert_eq!(fits_per_phase.len(), 4);
    assert!(fits_per_phase[0] > 0, "phase 1 starts cold");
    let last = *fits_per_phase.last().unwrap();
    assert_eq!(
        last, 0,
        "the shrink-back phase re-plans with zero new fits: {fits_per_phase:?}"
    );
}

#[test]
fn cold_and_warm_sessions_produce_identical_plans() {
    // A warm cache must never change planning *results*, only planning cost:
    // plans from a pre-warmed session equal plans from a cold one, wave for
    // wave, across every phase of the dynamic schedule.
    let schedule = DynamicWorkload::multitask_clip_schedule().unwrap();
    let cluster = ClusterSpec::homogeneous(2, 8);
    let mut warm = SpindleSession::new(cluster.clone());
    for phase in schedule.phases() {
        warm.plan(&phase.graph).unwrap(); // pre-warm on every signature
    }
    for phase in schedule.phases() {
        let from_warm = warm.plan(&phase.graph).unwrap();
        let from_cold = SpindleSession::new(cluster.clone())
            .plan(&phase.graph)
            .unwrap();
        assert_eq!(from_cold.waves(), from_warm.waves(), "{}", phase.label);
        assert!(
            (from_cold.theoretical_optimum() - from_warm.theoretical_optimum()).abs() < 1e-15,
            "{}",
            phase.label
        );
    }
}

#[test]
fn baselines_share_the_session_cache_with_spindle() {
    // After Spindle plans a workload in a session, a baseline planning the
    // same workload through the trait performs zero additional fits.
    let graph = multitask_clip(4).unwrap();
    let mut session = SpindleSession::new(ClusterSpec::homogeneous(2, 8));
    SystemKind::Spindle
        .planning_system()
        .plan(&graph, &mut session)
        .unwrap();
    let fits = session.curve_fits();
    for kind in [
        SystemKind::DeepSpeed,
        SystemKind::SpindleOptimus,
        SystemKind::DistMmMt,
    ] {
        kind.planning_system().plan(&graph, &mut session).unwrap();
        assert_eq!(
            session.curve_fits(),
            fits,
            "{kind} must reuse cached curves"
        );
    }
}
