//! Invariants of the event-driven runtime simulator, checked through the
//! public facade: determinism (same seed ⇒ byte-identical event log),
//! conservation (per-device busy time never exceeds the makespan), and the
//! cross-check oracle (contention-free simulated makespan matches the
//! analytical engine within 1% on every preset workload).

use std::collections::BTreeMap;

use spindle::prelude::*;
use spindle::runtime::{
    CommMode, DynamicRunLoop, RuntimeEngine, SimConfig, SimEventKind, Simulator, Straggler,
};
use spindle::workloads::{ArrivalSchedule, DynamicWorkload};

/// The paper's Fig. 8 presets, each on its smallest evaluated cluster.
fn preset_cases() -> Vec<(WorkloadPreset, ClusterSpec)> {
    WorkloadPreset::figure8_presets()
        .into_iter()
        .map(|preset| {
            let gpus = preset
                .paper_cluster_sizes()
                .into_iter()
                .min()
                .expect("preset has cluster sizes");
            (preset, ClusterSpec::homogeneous((gpus / 8).max(1), 8))
        })
        .collect()
}

#[test]
fn contention_free_simulation_matches_analytical_engine_on_all_presets() {
    for (preset, cluster) in preset_cases() {
        let graph = preset.build().unwrap();
        let plan = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
        let analytical = RuntimeEngine::new(&plan, &cluster)
            .with_graph(&graph)
            .run_iteration()
            .unwrap();
        let sim = Simulator::new(&plan, &cluster)
            .with_graph(&graph)
            .run_iteration()
            .unwrap();
        let gap = sim.gap_vs(analytical.iteration_time_s()).abs();
        assert!(
            gap < 0.01,
            "{preset}: sim {:.4} ms vs analytical {:.4} ms (gap {:.3}%)",
            sim.total_ms(),
            analytical.iteration_time_ms(),
            gap * 100.0
        );
    }
}

#[test]
fn same_seed_produces_byte_identical_event_logs() {
    let graph = multitask_clip(4).unwrap();
    let cluster = ClusterSpec::homogeneous(2, 8);
    let plan = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
    let config = SimConfig {
        seed: 0xFEED,
        comm_mode: CommMode::Overlapped,
        contention: true,
        compute_jitter: 0.08,
        stragglers: vec![Straggler {
            device: DeviceId(5),
            slowdown: 2.0,
            from_s: 0.0,
            until_s: 0.02,
        }],
        ..SimConfig::default()
    };
    let run = || {
        Simulator::new(&plan, &cluster)
            .with_graph(&graph)
            .with_config(config.clone())
            .run_iteration()
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.event_log().render().into_bytes(),
        b.event_log().render().into_bytes(),
        "same seed must replay the exact event log"
    );
    assert_eq!(a.total_s(), b.total_s());
    // A different seed perturbs compute times, so the log changes.
    let c = Simulator::new(&plan, &cluster)
        .with_graph(&graph)
        .with_config(SimConfig {
            seed: 0xBEEF,
            ..config
        })
        .run_iteration()
        .unwrap();
    assert_ne!(a.event_log().render(), c.event_log().render());
}

#[test]
fn per_device_busy_time_never_exceeds_makespan() {
    for (preset, cluster) in preset_cases() {
        let graph = preset.build().unwrap();
        let plan = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
        for config in [SimConfig::default(), SimConfig::contended()] {
            let sim = Simulator::new(&plan, &cluster)
                .with_graph(&graph)
                .with_config(config)
                .run_iteration()
                .unwrap();
            assert!(sim.total_s() > 0.0);
            for (&device, &busy) in sim.device_busy_s() {
                assert!(
                    busy <= sim.total_s() + 1e-9,
                    "{preset}: {device} busy {busy:.6}s exceeds makespan {:.6}s",
                    sim.total_s()
                );
            }
            assert!(
                sim.device_busy_s().values().any(|&b| b > 0.0),
                "{preset}: someone must compute"
            );
        }
    }
}

#[test]
fn event_log_is_well_formed_and_time_ordered() {
    let graph = ofasys(4).unwrap();
    let cluster = ClusterSpec::homogeneous(1, 8);
    let plan = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
    let sim = Simulator::new(&plan, &cluster)
        .with_graph(&graph)
        .with_config(SimConfig::contended())
        .run_iteration()
        .unwrap();
    let log = sim.event_log();
    assert!(log
        .entries()
        .windows(2)
        .all(|w| w[0].time_s <= w[1].time_s + 1e-12));
    let starts = log
        .entries()
        .iter()
        .filter(|e| matches!(e.kind, SimEventKind::ComputeStart { .. }))
        .count();
    let ends = log
        .entries()
        .iter()
        .filter(|e| matches!(e.kind, SimEventKind::ComputeEnd { .. }))
        .count();
    assert_eq!(starts, ends, "every compute start must end");
    let flow_starts = log
        .entries()
        .iter()
        .filter(|e| matches!(e.kind, SimEventKind::FlowStart { .. }))
        .count();
    assert_eq!(flow_starts, sim.flows_executed());
    assert!(matches!(
        log.entries().last().unwrap().kind,
        SimEventKind::IterationEnd
    ));
}

#[test]
fn heterogeneous_and_straggler_scenarios_degrade_gracefully() {
    let graph = multitask_clip(4).unwrap();
    let cluster = ClusterSpec::homogeneous(2, 8);
    let plan = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
    let nominal = Simulator::new(&plan, &cluster)
        .with_graph(&graph)
        .run_iteration()
        .unwrap();
    // Slowing half the cluster to 50% at most doubles the iteration and never
    // improves it.
    let speed_factors: BTreeMap<DeviceId, f64> = (8..16).map(|d| (DeviceId(d), 0.5)).collect();
    let hetero = Simulator::new(&plan, &cluster)
        .with_graph(&graph)
        .with_config(SimConfig {
            speed_factors,
            ..SimConfig::default()
        })
        .run_iteration()
        .unwrap();
    assert!(hetero.total_s() >= nominal.total_s() - 1e-12);
    assert!(hetero.total_s() <= nominal.total_s() * 2.0 + 1e-9);
    // A straggler window that ends before the run starts changes nothing.
    let noop = Simulator::new(&plan, &cluster)
        .with_graph(&graph)
        .with_config(SimConfig {
            stragglers: vec![Straggler {
                device: DeviceId(0),
                slowdown: 10.0,
                from_s: -2.0,
                until_s: 0.0,
            }],
            ..SimConfig::default()
        })
        .run_iteration()
        .unwrap();
    assert!((noop.total_s() - nominal.total_s()).abs() < 1e-12);
}

#[test]
fn dynamic_run_loop_replans_online_and_reports_cache_warmth() {
    let workload = DynamicWorkload::multitask_clip_schedule().unwrap();
    let schedule = ArrivalSchedule::from_workload(&workload, 0.08);
    let mut session = SpindleSession::new(ClusterSpec::homogeneous(2, 8));
    let report = DynamicRunLoop::new(&mut session).run(&schedule).unwrap();
    assert!(report.replans() >= 2, "the schedule must force ≥2 re-plans");
    assert!(report.warm_hit_rate() > 0.5);
    // The last phase repeats an earlier task mix: fully warm re-plan.
    assert!(report.phases.last().unwrap().warm);
    // Oracle-matching sim config: every phase's gap stays under 1%.
    assert!(report.worst_gap() < 0.01);
    // The session kept planning through the loop (one plan per phase).
    assert_eq!(session.plans_produced(), schedule.arrivals().len());
}
