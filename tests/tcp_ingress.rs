//! Integration tests of the TCP ingress: protocol discipline, malformed-frame
//! isolation and transport equivalence against the in-process fast path.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use spindle::cluster::ClusterSpec;
use spindle::graph::{ComputationGraph, GraphBuilder, Modality, OpKind, TensorShape};
use spindle::service::{
    proto, ErrorCode, FrameDecoder, LocalClient, Response, ServiceApi, ServiceConfig, TcpClient,
    TcpIngress, PROTO_VERSION,
};

fn graph(batch: u32) -> Arc<ComputationGraph> {
    let mut b = GraphBuilder::new();
    let t = b.add_task("t", [Modality::Vision, Modality::Text], batch);
    let tower = b
        .add_op_chain(
            t,
            OpKind::Encoder(Modality::Vision),
            TensorShape::new(batch, 197, 768),
            4,
        )
        .unwrap();
    let loss = b
        .add_op(t, OpKind::ContrastiveLoss, TensorShape::new(batch, 1, 768))
        .unwrap();
    b.add_flow(*tower.last().unwrap(), loss).unwrap();
    Arc::new(b.build().unwrap())
}

fn ingress() -> TcpIngress {
    TcpIngress::bind(
        "127.0.0.1:0",
        ClusterSpec::homogeneous(1, 8),
        ServiceConfig {
            workers: 1,
            queue_depth: 16,
            ..ServiceConfig::default()
        },
    )
    .expect("bind loopback ingress")
}

/// Reads raw frames off a hand-driven socket until one decodes, with a
/// deadline so protocol bugs fail the test instead of hanging it.
fn read_response(stream: &mut TcpStream, decoder: &mut FrameDecoder) -> Option<Response> {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(payload) = decoder.next_frame().expect("client-side framing") {
            return Some(Response::decode(&payload).expect("server sent a valid response"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => decoder.extend(&chunk[..n]),
            Err(_) => return None,
        }
    }
}

#[test]
fn hello_is_required_before_anything_else() {
    let ingress = ingress();
    let mut stream = TcpStream::connect(ingress.local_addr()).unwrap();
    // A Stats request before Hello draws HelloRequired and a close.
    stream
        .write_all(&spindle::service::Request::Stats.encode())
        .unwrap();
    let mut decoder = FrameDecoder::new();
    match read_response(&mut stream, &mut decoder) {
        Some(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::HelloRequired),
        other => panic!("expected HelloRequired error, got {other:?}"),
    }
    assert_eq!(read_response(&mut stream, &mut decoder), None, "closed");
    ingress.shutdown();
}

#[test]
fn version_mismatch_is_rejected() {
    let ingress = ingress();
    let mut stream = TcpStream::connect(ingress.local_addr()).unwrap();
    stream
        .write_all(
            &spindle::service::Request::Hello {
                proto_version: PROTO_VERSION + 1,
            }
            .encode(),
        )
        .unwrap();
    let mut decoder = FrameDecoder::new();
    match read_response(&mut stream, &mut decoder) {
        Some(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::UnsupportedVersion),
        other => panic!("expected UnsupportedVersion error, got {other:?}"),
    }
    ingress.shutdown();
}

#[test]
fn malformed_frames_kill_only_their_connection() {
    let ingress = ingress();
    let addr = ingress.local_addr();

    // A healthy client connects first and keeps working throughout.
    let mut good = TcpClient::connect(addr).expect("good client connects");

    // Bad client 1: valid Hello, then an unknown tag.
    let mut bad = TcpStream::connect(addr).unwrap();
    bad.write_all(
        &spindle::service::Request::Hello {
            proto_version: PROTO_VERSION,
        }
        .encode(),
    )
    .unwrap();
    let mut decoder = FrameDecoder::new();
    assert!(matches!(
        read_response(&mut bad, &mut decoder),
        Some(Response::HelloAck { .. })
    ));
    bad.write_all(&[1, 0, 0, 0, 0x7f]).unwrap(); // frame: len 1, unknown tag
    match read_response(&mut bad, &mut decoder) {
        Some(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Malformed error, got {other:?}"),
    }
    assert_eq!(read_response(&mut bad, &mut decoder), None, "closed");

    // Bad client 2: an oversized length prefix is rejected at the header.
    let mut huge = TcpStream::connect(addr).unwrap();
    huge.write_all(
        &spindle::service::Request::Hello {
            proto_version: PROTO_VERSION,
        }
        .encode(),
    )
    .unwrap();
    let mut decoder = FrameDecoder::new();
    assert!(matches!(
        read_response(&mut huge, &mut decoder),
        Some(Response::HelloAck { .. })
    ));
    huge.write_all(&u32::MAX.to_le_bytes()).unwrap();
    match read_response(&mut huge, &mut decoder) {
        Some(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Malformed error, got {other:?}"),
    }

    // Bad client 3: a truncated frame (announced longer than sent, then the
    // connection goes away) leaves no residue — the server just reaps it.
    let mut trunc = TcpStream::connect(addr).unwrap();
    trunc.write_all(&[200, 0, 0, 0, 0x02, 1, 2, 3]).unwrap();
    drop(trunc);

    // The good client still plans, the workers never noticed any of it.
    good.submit(7, &graph(8))
        .expect("good client still accepted");
    let done = good
        .poll_completion(Duration::from_secs(30))
        .expect("good client still gets completions");
    assert_eq!(done.tenant, 7);
    let summary = done.result.expect("plan succeeds");
    assert!(summary.num_waves > 0);

    let (stats, _) = good.finish();
    assert_eq!(stats.errors, 0, "malformed frames never reach a worker");
    assert_eq!(stats.submitted, 1);
    ingress.shutdown();
}

#[test]
fn transports_produce_bit_identical_plans() {
    // The same three-tenant trace through both transports: every tenant's
    // final plan fingerprint must match bit for bit.
    let trace: Vec<(u64, Arc<ComputationGraph>)> = vec![
        (0, graph(8)),
        (1, graph(16)),
        (2, graph(32)),
        (0, graph(24)),
        (1, graph(8)),
    ];
    let mut local = LocalClient::start(
        ClusterSpec::homogeneous(1, 8),
        ServiceConfig {
            workers: 1,
            queue_depth: 16,
            ..ServiceConfig::default()
        },
    );
    for (tenant, graph) in &trace {
        local.submit(*tenant, graph).expect("local accepts");
    }
    let (local_stats, local_done) = local.finish();

    let ingress = ingress();
    let mut tcp = TcpClient::connect(ingress.local_addr()).expect("connect");
    for (tenant, graph) in &trace {
        tcp.submit(*tenant, graph).expect("tcp accepts");
    }
    let (tcp_stats, tcp_done) = tcp.finish();
    ingress.shutdown();

    assert_eq!(local_stats.errors, 0);
    assert_eq!(tcp_stats.errors, 0);
    assert_eq!(local_stats.submitted, 5);
    assert_eq!(tcp_stats.submitted, 5);

    let finals = |done: &[spindle::service::ApiCompletion]| {
        let mut map = std::collections::BTreeMap::new();
        for c in done {
            map.insert(c.tenant, c.result.as_ref().expect("plans").plan_fingerprint);
        }
        map
    };
    let local_fp = finals(&local_done);
    let tcp_fp = finals(&tcp_done);
    assert_eq!(local_fp.len(), 3);
    assert_eq!(local_fp, tcp_fp, "transports diverged on final plans");
}

#[test]
fn stats_and_topology_flow_over_the_wire() {
    let ingress = ingress();
    let mut client = TcpClient::connect(ingress.local_addr()).expect("connect");
    client.submit(3, &graph(8)).unwrap();
    let done = client
        .poll_completion(Duration::from_secs(30))
        .expect("completion");
    assert!(done.result.is_ok());

    // A topology change over the wire re-plans the tenant on the survivors.
    let workers = client
        .submit_topology(&[spindle::cluster::DeviceId(7)], &[])
        .expect("topology broadcast");
    assert_eq!(workers, 1);
    let done = client
        .poll_completion(Duration::from_secs(30))
        .expect("topology completion");
    assert!(done.topology_change);
    assert!(done.result.is_ok());

    let (stats, rest) = client.finish();
    assert!(rest.is_empty());
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.topology_replans, 1);
    assert_eq!(stats.errors, 0);
    ingress.shutdown();
}

#[test]
fn graph_wire_len_matches_encoded_length_for_fleet_graphs() {
    // The throttle charges `graph_wire_len` without encoding; the analytic
    // figure must equal the real encoding for arbitrary graphs.
    for batch in [1u32, 8, 64] {
        let g = graph(batch);
        let mut bytes = Vec::new();
        proto::encode_graph(&g, &mut bytes);
        assert_eq!(bytes.len(), proto::graph_wire_len(&g), "batch {batch}");
    }
}

/// The acceptor loop backs off adaptively when idle (yield burst, then
/// sleeps doubling up to a 2 ms cap), so a bound-but-quiet ingress must burn
/// almost no CPU. Measured per-thread via `/proc`, so concurrent tests in
/// this binary cannot pollute the reading.
#[cfg(target_os = "linux")]
#[test]
fn idle_ingress_burns_almost_no_cpu() {
    fn ingress_thread_jiffies() -> Option<u64> {
        for entry in std::fs::read_dir("/proc/self/task").ok()? {
            let path = entry.ok()?.path();
            let comm = std::fs::read_to_string(path.join("comm")).unwrap_or_default();
            if comm.trim_end() != "spindle-ingress" {
                continue;
            }
            let stat = std::fs::read_to_string(path.join("stat")).ok()?;
            // Skip past the parenthesised comm; the remainder is
            // whitespace-separated with state first, utime/stime at overall
            // fields 14 and 15.
            let rest = stat.rsplit_once(')')?.1;
            let fields: Vec<&str> = rest.split_whitespace().collect();
            let utime: u64 = fields.get(11)?.parse().ok()?;
            let stime: u64 = fields.get(12)?.parse().ok()?;
            return Some(utime + stime);
        }
        None
    }

    let ingress = ingress();
    let mut client = TcpClient::connect(ingress.local_addr()).expect("connect");
    client.submit(1, &graph(8)).expect("submit");
    client
        .poll_completion(Duration::from_secs(30))
        .expect("completion");
    // Let the acceptor escalate past its yield burst before sampling.
    std::thread::sleep(Duration::from_millis(100));
    let before = ingress_thread_jiffies().expect("ingress thread visible in /proc");
    std::thread::sleep(Duration::from_millis(500));
    let after = ingress_thread_jiffies().expect("ingress thread visible in /proc");
    // 500 ms is 50 jiffies at the usual USER_HZ=100. The old fixed 200 µs
    // poll woke 5000 times a second; the adaptive backoff parks in capped
    // naps, so even a generous bound of ~15% of a core must hold.
    assert!(
        after - before <= 8,
        "idle acceptor used {} jiffies over 500 ms",
        after - before
    );
    ingress.shutdown();
}
