//! Integration-level property checks on the workload zoo and the baseline
//! planners: structural invariants that must hold for any task count, model
//! size or cluster shape used by the experiments.
//!
//! The former proptest cases are expressed as exhaustive sweeps over the small
//! parameter grids they used to sample from (task count × cluster shape ×
//! system), which gives strictly better coverage without the dependency.

use spindle::baselines::SystemKind;
use spindle::prelude::*;
use spindle::workloads::{
    figure13_presets, multitask_clip, ofasys, qwen_val, QwenValSize, WorkloadPreset,
};
use spindle_cluster::ClusterSpec;
use spindle_core::MetaGraph;

#[test]
fn presets_report_consistent_task_counts() {
    for preset in WorkloadPreset::figure8_presets()
        .into_iter()
        .chain(figure13_presets())
    {
        let graph = preset.build().unwrap();
        assert_eq!(graph.tasks().len(), preset.num_tasks(), "{preset}");
        // Every task activates at least one operator and exactly one loss.
        for task in graph.tasks() {
            let ops = graph.ops_of_task(task.id());
            assert!(!ops.is_empty(), "{preset}: {task} has no operators");
            let losses = ops
                .iter()
                .filter(|&&o| graph.op(o).kind().is_loss())
                .count();
            assert_eq!(losses, 1, "{preset}: {task} should end in one loss");
        }
    }
}

#[test]
fn contraction_shrinks_every_preset_substantially() {
    // Graph contraction is what keeps planning tractable: stacked layers fuse,
    // so the MetaGraph must be much smaller than the operator graph.
    for preset in WorkloadPreset::figure8_presets() {
        let graph = preset.build().unwrap();
        let metagraph = MetaGraph::contract(&graph);
        assert_eq!(metagraph.total_ops(), graph.num_ops(), "{preset}");
        assert!(
            metagraph.num_metaops() * 3 <= graph.num_ops(),
            "{preset}: contraction should fuse layer chains ({} metaops from {} ops)",
            metagraph.num_metaops(),
            graph.num_ops()
        );
    }
}

#[test]
fn qwen_val_sizes_are_ordered_in_flops_and_params() {
    let b9 = qwen_val(QwenValSize::B9).unwrap();
    let b30 = qwen_val(QwenValSize::B30).unwrap();
    let b70 = qwen_val(QwenValSize::B70).unwrap();
    assert!(b9.total_flops() < b30.total_flops());
    assert!(b30.total_flops() < b70.total_flops());
    assert!(b9.total_param_bytes() < b30.total_param_bytes());
    assert!(b30.total_param_bytes() < b70.total_param_bytes());
}

#[test]
fn task_count_growth_adds_flops_monotonically() {
    let mut previous = 0.0;
    for tasks in [1usize, 4, 7, 10] {
        let flops = multitask_clip(tasks).unwrap().total_flops();
        assert!(flops > previous, "{tasks} tasks should add work");
        previous = flops;
    }
    let mut previous = 0.0;
    for tasks in [1usize, 4, 7] {
        let flops = ofasys(tasks).unwrap().total_flops();
        assert!(flops > previous);
        previous = flops;
    }
}

/// Every baseline produces a valid, fully placed plan for any CLIP task
/// count and any small cluster, and the plan covers every operator.
#[test]
fn baselines_always_produce_valid_plans() {
    for nodes in 1usize..3 {
        let cluster = ClusterSpec::homogeneous(nodes, 8);
        // One session per cluster: all task counts and systems share curves.
        let mut session = SpindleSession::new(cluster.clone());
        for tasks in 1usize..6 {
            let graph = multitask_clip(tasks).unwrap();
            for kind in SystemKind::ALL {
                let plan = kind.planning_system().plan(&graph, &mut session).unwrap();
                assert!(
                    plan.validate().is_ok(),
                    "{kind}/{tasks}t/{nodes}n: {:?}",
                    plan.validate()
                );
                assert!(plan.require_placement().is_ok(), "{kind}/{tasks}t/{nodes}n");
                assert!(plan.makespan() > 0.0, "{kind}/{tasks}t/{nodes}n");
                assert!(plan.num_devices() as usize == cluster.num_devices());
            }
        }
    }
}

/// The decoupled baselines schedule exactly one MetaOp per wave (strictly
/// sequential execution), which is the property the paper's Fig. 1
/// motivation rests on.
#[test]
fn decoupled_baselines_are_strictly_sequential() {
    let mut session = SpindleSession::new(ClusterSpec::homogeneous(1, 8));
    for tasks in 1usize..5 {
        let graph = ofasys(tasks).unwrap();
        for kind in [
            SystemKind::DeepSpeed,
            SystemKind::MegatronLM,
            SystemKind::SpindleSeq,
        ] {
            let plan = kind.planning_system().plan(&graph, &mut session).unwrap();
            assert_eq!(
                plan.num_waves(),
                plan.metagraph().num_metaops(),
                "{kind}/{tasks}t"
            );
            for wave in plan.waves() {
                assert_eq!(wave.entries.len(), 1, "{kind}/{tasks}t");
            }
        }
    }
}
